#include "src/sched/simulator.h"

#include <algorithm>
#include <queue>

#include "src/trace/utilization.h"

namespace rc::sched {

using rc::trace::UtilizationModel;

std::vector<VmRequest> RequestsFromTrace(const rc::trace::Trace& trace, SimTime horizon) {
  std::vector<VmRequest> out;
  out.reserve(trace.vms().size());
  for (const auto& vm : trace.vms()) {
    if (vm.created >= horizon) continue;
    VmRequest req;
    req.vm_id = vm.vm_id;
    req.cores = vm.cores;
    req.memory_gb = vm.memory_gb;
    req.production = vm.tag == rc::trace::DeploymentTag::kProduction;
    req.arrival = vm.created;
    req.departure = vm.deleted;
    req.source = &vm;
    out.push_back(req);
  }
  std::sort(out.begin(), out.end(), [](const VmRequest& a, const VmRequest& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.vm_id < b.vm_id;
  });
  return out;
}

SimResult ClusterSimulator::Run(std::vector<VmRequest> requests,
                                SchedulingPolicy& policy) const {
  rc::obs::MetricsRegistry& reg = config_.metrics != nullptr
                                      ? *config_.metrics
                                      : rc::obs::MetricsRegistry::Global();
  rc::obs::Histogram& slot_latency = reg.GetHistogram(
      "rc_sim_slot_latency_us", {}, {},
      "per-slot event processing + utilization sampling wall time (us)");
  // Spare physical capacity on the oversubscribable pool: sum over
  // oversubscribable servers of max(0, physical - allocated) cores, sampled
  // once per slot. Falls as the informed policies pack the pool tighter.
  rc::obs::Gauge& headroom = reg.GetGauge(
      "rc_sim_oversub_headroom_cores", {},
      "unallocated physical cores across oversubscribable servers");
  rc::obs::Counter& vms_placed = reg.GetCounter("rc_sim_vms", {}, "placement requests");
  rc::obs::Counter& sched_failures =
      reg.GetCounter("rc_sim_failures", {}, "scheduling failures");
  rc::obs::Counter& overloads = reg.GetCounter(
      "rc_sim_overload_readings", {}, "occupied-server readings above 100% CPU");

  SimResult result;
  const double physical = static_cast<double>(config_.cluster.cores_per_server);

  struct Departure {
    SimTime time;
    size_t request_index;
    int server;
    bool operator>(const Departure& other) const { return time > other.time; }
  };
  std::priority_queue<Departure, std::vector<Departure>, std::greater<Departure>> departures;

  struct ActiveVm {
    const rc::trace::VmRecord* source;
    int cores;
  };
  std::vector<std::vector<ActiveVm>> hosted(static_cast<size_t>(config_.cluster.num_servers));

  // P99 via a fixed histogram over [0, 2) x physical capacity.
  constexpr size_t kUtilBins = 400;
  std::vector<int64_t> util_hist(kUtilBins, 0);
  double util_sum = 0.0;

  size_t next_arrival = 0;
  auto process_events_until = [&](SimTime t) {
    // Resolve predictions for the whole arrival wave up front: one batched
    // client call per slot instead of one prediction per Place. Departures
    // interleaved below don't depend on predictions, so prefetching the wave
    // before the event loop cannot change placement order or outcomes.
    size_t wave_end = next_arrival;
    while (wave_end < requests.size() && requests[wave_end].arrival <= t) ++wave_end;
    if (wave_end > next_arrival) {
      policy.PrefetchUtil({requests.data() + next_arrival, wave_end - next_arrival});
    }
    while (true) {
      bool have_arrival = next_arrival < requests.size() && requests[next_arrival].arrival <= t;
      bool have_departure = !departures.empty() && departures.top().time <= t;
      if (!have_arrival && !have_departure) break;
      // Interleave in time order; departures first on ties (frees capacity).
      bool departure_first =
          have_departure &&
          (!have_arrival || departures.top().time <= requests[next_arrival].arrival);
      if (departure_first) {
        Departure d = departures.top();
        departures.pop();
        const VmRequest& vm = requests[d.request_index];
        policy.Complete(vm, d.server);
        auto& list = hosted[static_cast<size_t>(d.server)];
        for (size_t i = 0; i < list.size(); ++i) {
          if (list[i].source == vm.source) {
            list[i] = list.back();
            list.pop_back();
            break;
          }
        }
      } else {
        VmRequest& vm = requests[next_arrival];
        ++result.total_vms;
        std::optional<int> server = policy.Place(vm);
        if (!server.has_value()) {
          ++result.failures;
        } else {
          if (policy.cluster().server(*server).alloc_cores > physical + 1e-9) {
            ++result.oversub_placements;
          }
          hosted[static_cast<size_t>(*server)].push_back(ActiveVm{vm.source, vm.cores});
          if (vm.departure > vm.arrival) {
            departures.push(Departure{vm.departure, next_arrival, *server});
          }
        }
        ++next_arrival;
      }
    }
  };

  const int64_t slots = config_.horizon / kSlot;
  for (int64_t slot = 0; slot < slots; ++slot) {
    rc::obs::ScopedTimer slot_timer(&slot_latency);
    SimTime slot_start = SlotStart(slot);
    process_events_until(slot_start);
    {
      const Cluster& cluster = policy.cluster();
      double spare = 0.0;
      for (int id = 0; id < cluster.size(); ++id) {
        const Server& server = cluster.server(id);
        if (server.kind != ServerKind::kOversubscribable) continue;
        spare += std::max(0.0, physical - server.alloc_cores);
      }
      headroom.Set(spare);
    }
    for (auto& list : hosted) {
      if (list.empty()) continue;
      double used_cores = 0.0;
      for (const ActiveVm& vm : list) {
        double frac =
            UtilizationModel::ReadingAt(vm.source->util, slot).max_cpu +
            config_.util_inflation;
        used_cores += frac * vm.cores;
      }
      double fraction = used_cores / physical;
      ++result.occupied_readings;
      if (fraction > 1.0 + 1e-9) ++result.overload_readings;
      util_sum += fraction;
      size_t bin = std::min(kUtilBins - 1, static_cast<size_t>(fraction * kUtilBins / 2.0));
      ++util_hist[bin];
    }
  }
  // Drain remaining arrivals inside the horizon (e.g. after the last slot).
  process_events_until(config_.horizon);

  vms_placed.Increment(static_cast<uint64_t>(result.total_vms));
  sched_failures.Increment(static_cast<uint64_t>(result.failures));
  overloads.Increment(static_cast<uint64_t>(result.overload_readings));

  if (result.occupied_readings > 0) {
    result.mean_occupied_utilization =
        util_sum / static_cast<double>(result.occupied_readings);
    int64_t target = result.occupied_readings -
                     (result.occupied_readings + 99) / 100;  // ~P99 rank
    int64_t seen = 0;
    for (size_t b = 0; b < kUtilBins; ++b) {
      seen += util_hist[b];
      if (seen > target) {
        result.p99_utilization = 2.0 * static_cast<double>(b + 1) / kUtilBins;
        break;
      }
    }
  }
  return result;
}

}  // namespace rc::sched
