// The scheduler variants evaluated in Section 6.2:
//
//  * Baseline          — no oversubscription, no production split.
//  * Naive             — oversubscription without predictions (no util cap).
//  * RC-informed-soft  — Algorithm 1 with the utilization check as a soft rule.
//  * RC-informed-hard  — Algorithm 1 with the utilization check in the hard
//                        fit rule.
//  * RC-soft-right     — oracle: the prediction is always the true bucket.
//  * RC-soft-wrong     — adversary: always an incorrect random bucket.
//
// A policy owns the scheduler configuration and fills each VM's predicted
// P95 utilization before placement. Predictions come from any callable
// (the RC client library in the benches; oracles in tests), so the scheduler
// stays decoupled from the prediction plumbing — exactly the DLL boundary of
// the paper.
#ifndef RC_SRC_SCHED_POLICIES_H_
#define RC_SRC_SCHED_POLICIES_H_

#include <functional>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/core/prediction.h"
#include "src/sched/scheduler.h"

namespace rc::sched {

enum class PolicyKind {
  kBaseline,
  kNaive,
  kRcInformedSoft,
  kRcInformedHard,
  kRcSoftRight,
  kRcSoftWrong,
};
const char* ToString(PolicyKind kind);

using UtilPredictor = std::function<rc::core::Prediction(const VmRequest& vm)>;

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kRcInformedSoft;
  OversubParams oversub;
  // Predictions below this confidence are discarded (Algorithm 1 line 10).
  double confidence_threshold = 0.6;
  // Add this many buckets to every prediction (sensitivity study).
  int bucket_shift = 0;
  uint64_t seed = 7;  // for RC-soft-wrong's random incorrect bucket
  // Registry receiving the scheduler's rc_sched_* instruments; null =
  // process-global.
  rc::obs::MetricsRegistry* metrics = nullptr;
};

class SchedulingPolicy {
 public:
  // `predictor` is required for the RC-informed kinds and ignored otherwise.
  SchedulingPolicy(PolicyConfig config, Cluster* cluster, UtilPredictor predictor);

  // Computes vm.predicted_util_fraction per the policy, then schedules.
  std::optional<int> Place(VmRequest& vm);
  void Complete(const VmRequest& vm, int server_id);

  const PolicyConfig& config() const { return config_; }
  const Cluster& cluster() const { return scheduler_->cluster(); }

  // Exposed for tests: the utilization fraction this policy would book for
  // the VM.
  double UtilFractionFor(const VmRequest& vm);

 private:
  PolicyConfig config_;
  UtilPredictor predictor_;
  std::unique_ptr<Scheduler> scheduler_;
  Rng rng_;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_POLICIES_H_
