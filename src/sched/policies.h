// The scheduler variants evaluated in Section 6.2:
//
//  * Baseline          — no oversubscription, no production split.
//  * Naive             — oversubscription without predictions (no util cap).
//  * RC-informed-soft  — Algorithm 1 with the utilization check as a soft rule.
//  * RC-informed-hard  — Algorithm 1 with the utilization check in the hard
//                        fit rule.
//  * RC-soft-right     — oracle: the prediction is always the true bucket.
//  * RC-soft-wrong     — adversary: always an incorrect random bucket.
//
// A policy owns the scheduler configuration and fills each VM's predicted
// P95 utilization before placement. Predictions come from any callable
// (the RC client library in the benches; oracles in tests), so the scheduler
// stays decoupled from the prediction plumbing — exactly the DLL boundary of
// the paper.
#ifndef RC_SRC_SCHED_POLICIES_H_
#define RC_SRC_SCHED_POLICIES_H_

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/prediction.h"
#include "src/sched/scheduler.h"

namespace rc::sched {

enum class PolicyKind {
  kBaseline,
  kNaive,
  kRcInformedSoft,
  kRcInformedHard,
  kRcSoftRight,
  kRcSoftWrong,
};
const char* ToString(PolicyKind kind);

using UtilPredictor = std::function<rc::core::Prediction(const VmRequest& vm)>;
// Batched form: one prediction per request, same order. Backed by the RC
// client's predict_many, which featurizes and scores all cache misses in a
// single engine walk instead of one model traversal per VM.
using BatchUtilPredictor =
    std::function<std::vector<rc::core::Prediction>(std::span<const VmRequest> vms)>;

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kRcInformedSoft;
  OversubParams oversub;
  // Predictions below this confidence are discarded (Algorithm 1 line 10).
  double confidence_threshold = 0.6;
  // Add this many buckets to every prediction (sensitivity study).
  int bucket_shift = 0;
  uint64_t seed = 7;  // for RC-soft-wrong's random incorrect bucket
  // Registry receiving the scheduler's rc_sched_* instruments; null =
  // process-global.
  rc::obs::MetricsRegistry* metrics = nullptr;
};

class SchedulingPolicy {
 public:
  // `predictor` is required for the RC-informed kinds and ignored otherwise.
  // `batch_predictor` is optional: when set, PrefetchUtil resolves whole
  // arrival waves through it.
  SchedulingPolicy(PolicyConfig config, Cluster* cluster, UtilPredictor predictor,
                   BatchUtilPredictor batch_predictor = nullptr);

  // Computes vm.predicted_util_fraction per the policy, then schedules.
  // Consumes a PrefetchUtil-filled fraction when the request carries one.
  std::optional<int> Place(VmRequest& vm);
  void Complete(const VmRequest& vm, int server_id);

  // Resolves predictions for a whole arrival wave with one batched client
  // call and stamps each request's predicted_util_fraction (informed kinds
  // with a batch predictor only; a no-op otherwise). Requests the simulator
  // hands to Place afterwards skip the per-VM predictor call.
  void PrefetchUtil(std::span<VmRequest> vms);

  const PolicyConfig& config() const { return config_; }
  const Cluster& cluster() const { return scheduler_->cluster(); }

  // Exposed for tests: the utilization fraction this policy would book for
  // the VM.
  double UtilFractionFor(const VmRequest& vm);

 private:
  // Maps one prediction to the utilization fraction Algorithm 1 books
  // (confidence gate + bucket shift); shared by the single and batched paths.
  double FractionFromPrediction(const rc::core::Prediction& pred) const;

  PolicyConfig config_;
  UtilPredictor predictor_;
  BatchUtilPredictor batch_predictor_;
  std::unique_ptr<Scheduler> scheduler_;
  Rng rng_;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_POLICIES_H_
