// The rule-chain scheduler: applies hard and soft rules in order, then
// picks the tightest-packing candidate (highest allocated cores, which also
// fills partially-used servers before empty ones).
#ifndef RC_SRC_SCHED_SCHEDULER_H_
#define RC_SRC_SCHED_SCHEDULER_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/obs/metrics.h"
#include "src/sched/cluster.h"
#include "src/sched/rules.h"

namespace rc::sched {

class Scheduler {
 public:
  // `metrics` receives the rc_sched_* instruments — per-rule rejection and
  // softened counters plus the placement-latency histogram (null =
  // process-global registry).
  Scheduler(Cluster* cluster, std::vector<std::unique_ptr<Rule>> rules,
            rc::obs::MetricsRegistry* metrics = nullptr);

  // Selects a server and performs PlaceVM bookkeeping; nullopt = scheduling
  // failure (no server satisfies the hard rules).
  std::optional<int> Schedule(const VmRequest& vm);

  // VMCompleted bookkeeping.
  void Complete(const VmRequest& vm, int server_id);

  const Cluster& cluster() const { return *cluster_; }

 private:
  Cluster* cluster_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<int> scratch_;  // candidate buffer reused across calls
  // Parallel to rules_: rejections[i] counts hard-rule i emptying the
  // candidate set (a scheduling failure attributed to that rule);
  // softened[i] counts soft-rule i being disregarded because enforcing it
  // would have left no candidate.
  std::vector<rc::obs::Counter*> rejections_;
  std::vector<rc::obs::Counter*> softened_;
  rc::obs::Histogram* place_latency_us_ = nullptr;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_SCHEDULER_H_
