#include "src/sched/cluster.h"

#include <cassert>

namespace rc::sched {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  servers_.resize(static_cast<size_t>(config.num_servers));
}

void Cluster::PlaceVm(const VmRequest& vm, int server_id) {
  Server& s = servers_[static_cast<size_t>(server_id)];
  if (s.empty()) {
    s.kind = vm.production ? ServerKind::kNonOversubscribable
                           : ServerKind::kOversubscribable;
  }
  s.alloc_cores += vm.cores;
  s.alloc_mem += vm.memory_gb;
  if (s.kind == ServerKind::kOversubscribable) {
    s.util_cores += vm.predicted_util_fraction * vm.cores;
  }
  s.active_vms += 1;
}

void Cluster::CompleteVm(const VmRequest& vm, int server_id) {
  Server& s = servers_[static_cast<size_t>(server_id)];
  s.alloc_cores -= vm.cores;
  s.alloc_mem -= vm.memory_gb;
  if (s.kind == ServerKind::kOversubscribable) {
    s.util_cores -= vm.predicted_util_fraction * vm.cores;
  }
  s.active_vms -= 1;
  assert(s.active_vms >= 0);
  if (s.active_vms == 0) {
    // Drained servers rejoin the empty pool with clean ledgers (guards
    // against floating-point residue).
    s.alloc_cores = 0.0;
    s.util_cores = 0.0;
    s.alloc_mem = 0.0;
  }
}

bool Cluster::FitsStrict(const VmRequest& vm, const Server& s) const {
  return s.alloc_cores + vm.cores <= physical_cores() + 1e-9 && FitsMemory(vm, s);
}

bool Cluster::FitsMemory(const VmRequest& vm, const Server& s) const {
  return s.alloc_mem + vm.memory_gb <= config_.memory_per_server_gb + 1e-9;
}

}  // namespace rc::sched
