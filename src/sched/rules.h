// Rule-chain scheduler (paper Section 5): Azure's scheduler "sequentially
// applies a set of rules that progressively narrow the choice of servers".
// Hard rules must hold; a soft rule is disregarded if enforcing it would
// leave no candidate (the paper's soft variant of the utilization check).
#ifndef RC_SRC_SCHED_RULES_H_
#define RC_SRC_SCHED_RULES_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/sched/cluster.h"

namespace rc::sched {

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const char* name() const = 0;
  virtual bool hard() const = 0;
  // Removes ineligible servers from `candidates`.
  virtual void Filter(const VmRequest& vm, const Cluster& cluster,
                      std::vector<int>& candidates) const = 0;
};

// Baseline fit: allocation and memory within physical capacity; no
// production / non-production distinction, no oversubscription.
class StrictFitRule final : public Rule {
 public:
  const char* name() const override { return "strict-fit"; }
  bool hard() const override { return true; }
  void Filter(const VmRequest& vm, const Cluster& cluster,
              std::vector<int>& candidates) const override;
};

struct OversubParams {
  double max_oversub = 1.25;  // MAX_OVERSUB: allocation cap on oversub servers
  double max_util = 1.00;     // MAX_UTIL: predicted-utilization cap
};

// Algorithm 1's SelectCandidateServers. Production VMs go to
// non-oversubscribable (or empty) servers under the strict allocation check;
// non-production VMs go to oversubscribable (or empty) servers under
// MAX_OVERSUB on allocation. When `enforce_util_check` is true the
// c.util + V.util <= MAX_UTIL condition is applied too; the soft-rule
// configuration instead applies it via a separate UtilizationCapRule.
class OversubFitRule final : public Rule {
 public:
  OversubFitRule(OversubParams params, bool enforce_util_check)
      : params_(params), enforce_util_check_(enforce_util_check) {}

  const char* name() const override { return "oversub-fit"; }
  bool hard() const override { return true; }
  void Filter(const VmRequest& vm, const Cluster& cluster,
              std::vector<int>& candidates) const override;

 private:
  OversubParams params_;
  bool enforce_util_check_;
};

// The utilization check as a soft rule (paper: "Implementation as a soft
// rule"): drops servers whose predicted utilization would exceed MAX_UTIL,
// but is disregarded by the chain when it would eliminate every candidate.
class UtilizationCapRule final : public Rule {
 public:
  explicit UtilizationCapRule(OversubParams params) : params_(params) {}

  const char* name() const override { return "util-cap"; }
  bool hard() const override { return false; }
  void Filter(const VmRequest& vm, const Cluster& cluster,
              std::vector<int>& candidates) const override;

 private:
  OversubParams params_;
};

// Soft preference that avoids oversubscribing a server when another
// candidate can take the VM without oversubscription (paper Section 5).
class AvoidOversubscriptionRule final : public Rule {
 public:
  const char* name() const override { return "avoid-oversub"; }
  bool hard() const override { return false; }
  void Filter(const VmRequest& vm, const Cluster& cluster,
              std::vector<int>& candidates) const override;
};

// Soft preference for filling partially-used servers before opening empty
// ones ("a later rule tries to fill up non-oversubscribable servers before
// it places VMs in empty servers") — keeps the empty pool available for
// whichever group needs it.
class PreferNonEmptyRule final : public Rule {
 public:
  const char* name() const override { return "prefer-non-empty"; }
  bool hard() const override { return false; }
  void Filter(const VmRequest& vm, const Cluster& cluster,
              std::vector<int>& candidates) const override;
};

}  // namespace rc::sched

#endif  // RC_SRC_SCHED_RULES_H_
