#include "src/net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/clock.h"
#include "src/common/faults.h"
#include "src/net/server.h"  // EINTR-safe read/write wrappers
#include "src/obs/trace_events.h"

namespace rc::net {

namespace {

// Polls fd for `events` until ready or the deadline (absolute clock-µs)
// expires. Returns 1 when ready, 0 on timeout, -1 on poll error. EINTR
// re-evaluates the remaining budget and retries.
int PollDeadline(int fd, short events, rc::common::Clock* clock, int64_t deadline_us) {
  for (;;) {
    int64_t left_ms = (deadline_us - clock->NowUs()) / 1000;
    if (left_ms < 0) return 0;
    pollfd p{fd, events, 0};
    // +1 rounds the sub-millisecond remainder up so we never spin at 0ms.
    int r = ::poll(&p, 1, static_cast<int>(left_ms) + 1);
    if (r > 0) return 1;
    if (r == 0) return 0;
    if (errno != EINTR) return -1;
  }
}

}  // namespace

const char* ToString(Status status) {
  switch (status) {
    case Status::kOk: return "ok";
    case Status::kTimeout: return "timeout";
    case Status::kConnectFailed: return "connect failed";
    case Status::kSendFailed: return "send failed";
    case Status::kRecvFailed: return "recv failed";
    case Status::kProtocolError: return "protocol error";
    case Status::kRemoteError: return "remote error";
  }
  return "unknown";
}

Client::Client(ClientConfig config) : config_(std::move(config)) {
  clock_ = config_.clock != nullptr ? config_.clock
                                    : rc::common::MonotonicClock::Instance();
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<rc::obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.requests = &metrics_->GetCounter("rc_net_client_requests", {}, "round-trips attempted");
  m_.timeouts = &metrics_->GetCounter("rc_net_client_timeouts", {}, "deadline expiries");
  m_.reconnects = &metrics_->GetCounter("rc_net_client_reconnects", {}, "sockets (re)opened");
  m_.errors = &metrics_->GetCounter("rc_net_client_errors", {}, "failed round-trips");
  m_.request_latency_us = &metrics_->GetHistogram(
      "rc_net_client_request_latency_us", {}, {}, "client-observed round-trip latency (us)");

  int pool = config_.pool_size > 0 ? config_.pool_size : 1;
  conns_.resize(static_cast<size_t>(pool));
  free_slots_.reserve(conns_.size());
  for (size_t i = 0; i < conns_.size(); ++i) free_slots_.push_back(i);
}

Client::~Client() {
  for (Conn& conn : conns_) Disconnect(conn);
}

int64_t Client::DeadlineFor(int64_t deadline_us) const {
  int64_t us = deadline_us > 0 ? deadline_us : config_.default_deadline_us;
  return clock_->NowUs() + us;
}

Status Client::Acquire(int64_t deadline_us, size_t* slot) {
  std::unique_lock<std::mutex> lock(pool_mu_);
  if (!clock_->WaitUntil(lock, pool_cv_, deadline_us,
                         [this] { return !free_slots_.empty(); })) {
    return Status::kTimeout;
  }
  *slot = free_slots_.back();
  free_slots_.pop_back();
  return Status::kOk;
}

void Client::Release(size_t slot) {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    free_slots_.push_back(slot);
  }
  pool_cv_.notify_one();
}

void Client::Disconnect(Conn& conn) {
  if (conn.fd >= 0) {
    ::close(conn.fd);
    conn.fd = -1;
  }
}

Status Client::EnsureConnected(Conn& conn, int64_t deadline_us) {
  if (conn.fd >= 0) return Status::kOk;
  int64_t backoff_us = config_.reconnect_backoff_us;
  int attempts = config_.max_connect_attempts > 0 ? config_.max_connect_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (clock_->NowUs() >= deadline_us) return Status::kTimeout;
    if (attempt > 0) {
      // Doubling backoff, clamped so we never sleep past the deadline.
      int64_t nap_us = backoff_us;
      int64_t left_us = deadline_us - clock_->NowUs();
      if (nap_us > left_us) nap_us = left_us;
      if (nap_us > 0) clock_->SleepUs(nap_us);
      backoff_us *= 2;
    }
    if (rc::faults::InjectError("net/connect")) continue;  // simulated refusal

    int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
    if (fd < 0) continue;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::kConnectFailed;  // bad host never resolves; do not retry
    }
    int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno == EINTR) {
      // EINTR leaves the connect in progress; fall through to the poll.
      rc = -1;
      errno = EINPROGRESS;
    }
    if (rc != 0 && errno == EINPROGRESS) {
      int ready = PollDeadline(fd, POLLOUT, clock_, deadline_us);
      if (ready <= 0) {
        ::close(fd);
        if (ready == 0) return Status::kTimeout;
        continue;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
        ::close(fd);
        continue;
      }
    } else if (rc != 0) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    conn.fd = fd;
    m_.reconnects->Increment();
    return Status::kOk;
  }
  return Status::kConnectFailed;
}

Status Client::SendAll(Conn& conn, const std::vector<uint8_t>& bytes,
                       int64_t deadline_us) {
  if (rc::faults::InjectError("net/send")) return Status::kSendFailed;
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t w = WriteEintr(conn.fd, bytes.data() + off, bytes.size() - off);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int ready = PollDeadline(conn.fd, POLLOUT, clock_, deadline_us);
      if (ready == 0) return Status::kTimeout;
      if (ready < 0) return Status::kSendFailed;
      continue;
    }
    return Status::kSendFailed;
  }
  return Status::kOk;
}

Status Client::RecvExact(Conn& conn, uint8_t* buf, size_t n, int64_t deadline_us) {
  size_t off = 0;
  while (off < n) {
    ssize_t r = ReadEintr(conn.fd, buf + off, n - off);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return Status::kRecvFailed;  // peer closed mid-response
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      int ready = PollDeadline(conn.fd, POLLIN, clock_, deadline_us);
      if (ready == 0) return Status::kTimeout;
      if (ready < 0) return Status::kRecvFailed;
      continue;
    }
    return Status::kRecvFailed;
  }
  return Status::kOk;
}

Status Client::Call(Opcode opcode, uint64_t request_id, const std::vector<uint8_t>& frame,
                    std::vector<uint8_t>* payload, size_t* body_off, int64_t deadline_us) {
  uint64_t start_ns = rc::obs::NowNs();
  m_.requests->Increment();
  size_t slot;
  Status status = Acquire(deadline_us, &slot);
  if (status != Status::kOk) {
    m_.timeouts->Increment();
    return status;
  }
  Conn& conn = conns_[slot];

  status = EnsureConnected(conn, deadline_us);
  if (status == Status::kOk) status = SendAll(conn, frame, deadline_us);
  if (status == Status::kOk && rc::faults::InjectError("net/recv")) {
    status = Status::kRecvFailed;
  }
  uint32_t payload_len = 0;
  if (status == Status::kOk) {
    status = RecvExact(conn, reinterpret_cast<uint8_t*>(&payload_len), sizeof(payload_len),
                       deadline_us);
  }
  if (status == Status::kOk &&
      (payload_len < kHeaderBytesV1 || payload_len > config_.max_frame_bytes)) {
    status = Status::kProtocolError;
  }
  if (status == Status::kOk) {
    payload->resize(payload_len);
    status = RecvExact(conn, payload->data(), payload_len, deadline_us);
  }
  if (status == Status::kOk) {
    rc::ml::ByteReader r(payload->data(), payload->size());
    FrameHeader header;
    if (DecodeHeader(r, &header) != WireStatus::kOk ||
        header.opcode != static_cast<uint16_t>(opcode) || header.request_id != request_id) {
      status = Status::kProtocolError;
    } else {
      // DecodeHeader consumed the (version-dependent) header; the body
      // starts wherever the reader stopped.
      *body_off = payload->size() - r.remaining();
    }
  }

  if (status != Status::kOk) {
    // The stream may hold a half-delivered response; never reuse it.
    Disconnect(conn);
    if (status == Status::kTimeout) {
      m_.timeouts->Increment();
    } else {
      m_.errors->Increment();
    }
  } else {
    m_.request_latency_us->Record(static_cast<double>(rc::obs::NowNs() - start_ns) / 1000.0);
  }
  Release(slot);
  return status;
}

Status Client::PredictSingle(const std::string& model, const core::ClientInputs& inputs,
                             core::Prediction* out, int64_t deadline_us) {
  int64_t deadline = DeadlineFor(deadline_us);
  uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  // The client is where traces are born: continue the caller's context if
  // one is current, otherwise roll the sampling dice for a new root. The
  // span's own id rides the frame so the server's spans parent under it.
  rc::obs::TraceContext root = rc::obs::CurrentTraceContext();
  if (!root.valid()) root = rc::obs::Tracer::Global().StartTrace();
  rc::obs::TraceSpan span("netclient/call", root);
  std::vector<uint8_t> frame;
  AppendPredictSingleRequest(frame, id, model, inputs, span.context());
  std::vector<uint8_t> payload;
  size_t body_off = 0;
  Status status = Call(Opcode::kPredictSingle, id, frame, &payload, &body_off, deadline);
  if (status != Status::kOk) return status;
  rc::ml::ByteReader r(payload.data() + body_off, payload.size() - body_off);
  WireStatus remote;
  std::string error;
  core::Prediction p;
  if (!DecodePredictSingleResponse(r, &remote, &p, &error)) {
    m_.errors->Increment();
    return Status::kProtocolError;
  }
  if (remote != WireStatus::kOk) {
    m_.errors->Increment();
    return Status::kRemoteError;
  }
  *out = p;
  return Status::kOk;
}

Status Client::PredictMany(const std::string& model, std::span<const core::ClientInputs> inputs,
                           std::vector<core::Prediction>* out, int64_t deadline_us) {
  int64_t deadline = DeadlineFor(deadline_us);
  uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  rc::obs::TraceContext root = rc::obs::CurrentTraceContext();
  if (!root.valid()) root = rc::obs::Tracer::Global().StartTrace();
  rc::obs::TraceSpan span("netclient/call", root);
  std::vector<uint8_t> frame;
  AppendPredictManyRequest(frame, id, model, inputs, span.context());
  std::vector<uint8_t> payload;
  size_t body_off = 0;
  Status status = Call(Opcode::kPredictMany, id, frame, &payload, &body_off, deadline);
  if (status != Status::kOk) return status;
  rc::ml::ByteReader r(payload.data() + body_off, payload.size() - body_off);
  WireStatus remote;
  std::string error;
  std::vector<core::Prediction> predictions;
  if (!DecodePredictManyResponse(r, kMaxBatch, &remote, &predictions, &error)) {
    m_.errors->Increment();
    return Status::kProtocolError;
  }
  if (remote != WireStatus::kOk) {
    m_.errors->Increment();
    return Status::kRemoteError;
  }
  *out = std::move(predictions);
  return Status::kOk;
}

Status Client::Health(HealthResponse* out, int64_t deadline_us) {
  int64_t deadline = DeadlineFor(deadline_us);
  uint64_t id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  std::vector<uint8_t> frame;
  AppendHealthRequest(frame, id);
  std::vector<uint8_t> payload;
  size_t body_off = 0;
  Status status = Call(Opcode::kHealth, id, frame, &payload, &body_off, deadline);
  if (status != Status::kOk) return status;
  rc::ml::ByteReader r(payload.data() + body_off, payload.size() - body_off);
  WireStatus remote;
  std::string error;
  HealthResponse health;
  if (!DecodeHealthResponse(r, &remote, &health, &error)) {
    m_.errors->Increment();
    return Status::kProtocolError;
  }
  if (remote != WireStatus::kOk) {
    m_.errors->Increment();
    return Status::kRemoteError;
  }
  *out = health;
  return Status::kOk;
}

}  // namespace rc::net
