#include "src/net/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>

#include "src/net/server.h"  // EINTR-safe read/write/accept wrappers

namespace rc::net {

namespace {

constexpr int kMaxEpollEvents = 32;
constexpr size_t kReadChunk = 4096;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 414: return "URI Too Long";
    case 503: return "Service Unavailable";
  }
  return "Internal Server Error";
}

// Finds the end of the request header block: CRLFCRLF per the RFC, bare
// LFLF tolerated (curl and netcat both emit CRLF, but a lenient parser
// keeps hand-typed probes working). Returns npos while incomplete.
size_t HeaderEnd(const std::vector<uint8_t>& in) {
  const char* data = reinterpret_cast<const char*>(in.data());
  std::string_view sv(data, in.size());
  size_t crlf = sv.find("\r\n\r\n");
  size_t lflf = sv.find("\n\n");
  if (crlf == std::string_view::npos) return lflf;
  if (lflf == std::string_view::npos) return crlf;
  return std::min(crlf, lflf);
}

}  // namespace

AdminServer::AdminServer(AdminServerConfig config) : config_(std::move(config)) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool AdminServer::Start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1 ||
      ::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    Stop();
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void AdminServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
    if (wake_fd_ >= 0) ::close(wake_fd_);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    epoll_fd_ = wake_fd_ = listen_fd_ = -1;
    return;
  }
  stopping_.store(true, std::memory_order_release);
  uint64_t nudge = 1;
  (void)WriteEintr(wake_fd_, &nudge, sizeof(nudge));
  if (thread_.joinable()) thread_.join();
  for (const auto& [fd, conn] : conns_) ::close(fd);
  conns_.clear();
  ::close(epoll_fd_);
  ::close(wake_fd_);
  ::close(listen_fd_);
  epoll_fd_ = wake_fd_ = listen_fd_ = -1;
}

void AdminServer::Loop() {
  epoll_event events[kMaxEpollEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == wake_fd_) {
        uint64_t drain;
        (void)ReadEintr(wake_fd_, &drain, sizeof(drain));
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn& conn = *it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConn(fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0 && !ReadReady(conn)) continue;
      if ((mask & EPOLLOUT) != 0) WriteReady(conn);
    }
  }
}

void AdminServer::AcceptReady() {
  for (;;) {
    int fd = AcceptEintr(listen_fd_);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
  }
}

bool AdminServer::ReadReady(Conn& conn) {
  for (;;) {
    size_t old = conn.in.size();
    conn.in.resize(old + kReadChunk);
    ssize_t r = ReadEintr(conn.fd, conn.in.data() + old, kReadChunk);
    if (r > 0) {
      conn.in.resize(old + static_cast<size_t>(r));
      if (static_cast<size_t>(r) < kReadChunk) break;
      continue;
    }
    conn.in.resize(old);
    if (r == 0) {  // peer closed before (or after) a full request
      CloseConn(conn.fd);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConn(conn.fd);
    return false;
  }
  if (!conn.responded) {
    MaybeRespond(conn);
  } else {
    // Response already queued; anything else the peer dribbles in is
    // discarded so a hostile sender cannot grow the buffer unboundedly.
    conn.in.clear();
  }
  if (!conn.out.empty()) return WriteReady(conn);
  return true;
}

void AdminServer::MaybeRespond(Conn& conn) {
  size_t header_end = HeaderEnd(conn.in);
  if (header_end == std::string::npos) {
    if (conn.in.size() > config_.max_request_bytes) {
      QueueResponse(conn, {414, "text/plain; charset=utf-8", "request too large\n"});
    }
    return;  // keep buffering the dribble
  }
  // Request line: METHOD SP TARGET SP VERSION. Anything else is a 400 —
  // answered, not dropped, so a probing client sees why it failed.
  std::string_view head(reinterpret_cast<const char*>(conn.in.data()), header_end);
  size_t eol = head.find_first_of("\r\n");
  std::string_view line = eol == std::string_view::npos ? head : head.substr(0, eol);
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      line.find("HTTP/", sp2 + 1) != sp2 + 1) {
    QueueResponse(conn, {400, "text/plain; charset=utf-8", "malformed request\n"});
    return;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    QueueResponse(conn, {405, "text/plain; charset=utf-8", "GET only\n"});
    return;
  }
  std::string path(target.substr(0, target.find('?')));
  auto it = routes_.find(path);
  if (it == routes_.end()) {
    QueueResponse(conn, {404, "text/plain; charset=utf-8", "no such endpoint\n"});
    return;
  }
  QueueResponse(conn, it->second());
}

void AdminServer::QueueResponse(Conn& conn, const Response& response) {
  conn.responded = true;
  conn.out = "HTTP/1.0 " + std::to_string(response.status) + " " +
             ReasonPhrase(response.status) +
             "\r\nContent-Type: " + response.content_type +
             "\r\nContent-Length: " + std::to_string(response.body.size()) +
             "\r\nConnection: close\r\n\r\n" +
             response.body;
}

bool AdminServer::WriteReady(Conn& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t w =
        WriteEintr(conn.fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off);
    if (w > 0) {
      conn.out_off += static_cast<size_t>(w);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return UpdateEpollOut(conn, true);
    CloseConn(conn.fd);
    return false;
  }
  if (conn.responded) {  // HTTP/1.0: one request, one response, close
    CloseConn(conn.fd);
    return false;
  }
  return true;
}

bool AdminServer::UpdateEpollOut(Conn& conn, bool want) {
  if (conn.epollout_armed == want) return true;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
    CloseConn(conn.fd);
    return false;
  }
  conn.epollout_armed = want;
  return true;
}

void AdminServer::CloseConn(int fd) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  conns_.erase(it);
}

}  // namespace rc::net
