// Connection-pooled client for the RC prediction service — the process-side
// half of the paper's "client DLL" once the predictions live behind a
// network hop. A small pool of TCP connections is multiplexed across caller
// threads: each request leases one connection (blocking with the request's
// deadline if the pool is drained), writes one frame, and reads exactly one
// response frame, so there is no in-flight interleaving to reorder.
//
// Failure semantics:
//  * every call carries a deadline (per-request override or the config
//    default); deadline expiry returns kTimeout and closes the leased
//    connection, because a late response would desync the stream;
//  * a dead connection reconnects with doubling backoff (bounded attempts,
//    never sleeping past the caller's deadline);
//  * reconnects, sends, and receives pass through rc::faults sites
//    ("net/connect", "net/send", "net/recv") so outage behavior is testable
//    deterministically.
#ifndef RC_SRC_NET_CLIENT_H_
#define RC_SRC_NET_CLIENT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/net/protocol.h"
#include "src/obs/metrics.h"

namespace rc::common {
class Clock;
}  // namespace rc::common

namespace rc::net {

enum class Status {
  kOk = 0,
  kTimeout,         // deadline expired (pool wait, connect, send, or recv)
  kConnectFailed,   // reconnect attempts exhausted
  kSendFailed,
  kRecvFailed,      // peer closed or read error mid-response
  kProtocolError,   // response frame failed to parse or ids mismatched
  kRemoteError,     // server answered with a non-kOk WireStatus
};
const char* ToString(Status status);

struct ClientConfig {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  // Connections in the pool; also the maximum number of requests in flight.
  int pool_size = 4;
  // Default per-request deadline, pool wait included. Each call may override.
  int64_t default_deadline_us = 250'000;
  // Reconnect policy: up to max_connect_attempts, sleeping
  // reconnect_backoff_us * 2^attempt between tries (clamped to the deadline).
  int max_connect_attempts = 3;
  int64_t reconnect_backoff_us = 1'000;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  // Registry for the rc_net_client_* instruments; null = private registry.
  rc::obs::MetricsRegistry* metrics = nullptr;
  // Injected time source for deadlines, pool waits, and reconnect backoff.
  // Null uses MonotonicClock::Instance(); tests substitute a VirtualClock
  // (socket readiness itself still polls real time — only deadline math and
  // backoff naps are virtualized). Must outlive the client.
  rc::common::Clock* clock = nullptr;
};

class Client {
 public:
  explicit Client(ClientConfig config);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  // All calls are thread-safe. deadline_us == 0 uses the config default.
  // On non-kOk the output parameter is untouched.
  Status PredictSingle(const std::string& model, const core::ClientInputs& inputs,
                       core::Prediction* out, int64_t deadline_us = 0);
  Status PredictMany(const std::string& model, std::span<const core::ClientInputs> inputs,
                     std::vector<core::Prediction>* out, int64_t deadline_us = 0);
  Status Health(HealthResponse* out, int64_t deadline_us = 0);

  rc::obs::MetricsRegistry& metrics() const { return *metrics_; }

 private:
  struct Conn {
    int fd = -1;
  };

  // Deadlines below are absolute microseconds on the injected clock's scale
  // (clock_->NowUs() + budget).
  // Leases a pool slot, blocking until one frees or the deadline expires.
  Status Acquire(int64_t deadline_us, size_t* slot);
  void Release(size_t slot);
  // Connects the slot's socket if needed (backoff through "net/connect").
  Status EnsureConnected(Conn& conn, int64_t deadline_us);
  void Disconnect(Conn& conn);

  // One full round-trip: lease, connect, send `frame`, receive the matching
  // response, fill `payload` with the response frame (header already
  // validated against `request_id` and `opcode`). `body_off` receives the
  // offset of the opcode body inside `payload` — v2 headers are variable
  // length (optional trace block), so callers must not assume kHeaderBytes.
  Status Call(Opcode opcode, uint64_t request_id, const std::vector<uint8_t>& frame,
              std::vector<uint8_t>* payload, size_t* body_off, int64_t deadline_us);

  Status SendAll(Conn& conn, const std::vector<uint8_t>& bytes, int64_t deadline_us);
  // Reads exactly n bytes into buf, polling against the deadline.
  Status RecvExact(Conn& conn, uint8_t* buf, size_t n, int64_t deadline_us);

  int64_t DeadlineFor(int64_t deadline_us) const;

  ClientConfig config_;
  rc::common::Clock* clock_;
  std::vector<Conn> conns_;
  std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::vector<size_t> free_slots_;
  std::atomic<uint64_t> next_request_id_{1};

  std::unique_ptr<rc::obs::MetricsRegistry> owned_metrics_;
  rc::obs::MetricsRegistry* metrics_ = nullptr;
  struct Instruments {
    rc::obs::Counter* requests;
    rc::obs::Counter* timeouts;
    rc::obs::Counter* reconnects;
    rc::obs::Counter* errors;  // non-kOk, non-timeout outcomes
    rc::obs::Histogram* request_latency_us;
  } m_{};
};

}  // namespace rc::net

#endif  // RC_SRC_NET_CLIENT_H_
