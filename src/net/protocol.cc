#include "src/net/protocol.h"

#include <cstring>

namespace rc::net {

namespace {

using rc::ml::ByteReader;
using rc::ml::ByteWriter;

void AppendRaw(std::vector<uint8_t>& out, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  out.insert(out.end(), p, p + n);
}

void EncodePrediction(ByteWriter& w, const core::Prediction& p) {
  w.Pod<uint8_t>(p.valid ? 1 : 0);
  w.I32(p.bucket);
  w.F64(p.score);
}

core::Prediction DecodePrediction(ByteReader& r) {
  core::Prediction p;
  p.valid = r.Pod<uint8_t>() != 0;
  p.bucket = r.I32();
  p.score = r.F64();
  return p;
}

// Begins a response body; error statuses carry a message and nothing else.
void EncodeStatus(ByteWriter& w, WireStatus status) {
  w.Pod<uint16_t>(static_cast<uint16_t>(status));
}

// Reads the leading status of a response body. False on truncation.
bool ReadStatus(ByteReader& r, WireStatus* status, std::string* error) {
  try {
    *status = static_cast<WireStatus>(r.Pod<uint16_t>());
    if (*status != WireStatus::kOk) {
      *error = r.String();
      return true;
    }
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

const char* ToString(WireStatus status) {
  switch (status) {
    case WireStatus::kOk: return "ok";
    case WireStatus::kBadMagic: return "bad magic";
    case WireStatus::kBadVersion: return "unsupported version";
    case WireStatus::kBadOpcode: return "unknown opcode";
    case WireStatus::kMalformed: return "malformed body";
    case WireStatus::kFrameTooLarge: return "frame too large";
    case WireStatus::kBatchTooLarge: return "batch too large";
    case WireStatus::kInternal: return "internal error";
  }
  return "unknown status";
}

void AppendFrame(std::vector<uint8_t>& out, Opcode opcode, uint64_t request_id,
                 std::span<const uint8_t> body, uint16_t version,
                 const obs::TraceContext& trace) {
  const bool v1 = version == kProtocolVersionV1;
  const uint8_t flags = (!v1 && trace.valid()) ? kFlagTraceContext : 0;
  size_t header_bytes = v1 ? kHeaderBytesV1 : kHeaderBytes;
  if (flags & kFlagTraceContext) header_bytes += kTraceWireBytes;
  uint32_t payload_len = static_cast<uint32_t>(header_bytes + body.size());
  uint32_t magic = kMagic;
  uint16_t op = static_cast<uint16_t>(opcode);
  out.reserve(out.size() + kLengthPrefixBytes + payload_len);
  AppendRaw(out, &payload_len, sizeof(payload_len));
  AppendRaw(out, &magic, sizeof(magic));
  AppendRaw(out, &version, sizeof(version));
  AppendRaw(out, &op, sizeof(op));
  AppendRaw(out, &request_id, sizeof(request_id));
  if (!v1) {
    out.push_back(flags);
    if (flags & kFlagTraceContext) {
      AppendRaw(out, &trace.trace_id, sizeof(trace.trace_id));
      AppendRaw(out, &trace.span_id, sizeof(trace.span_id));
      out.push_back(trace.sampled ? 1 : 0);
    }
  }
  if (!body.empty()) AppendRaw(out, body.data(), body.size());
}

void EncodeInputs(ByteWriter& w, const core::ClientInputs& in) {
  w.U64(in.subscription_id);
  w.I32(in.vm_type);
  w.I32(in.guest_os);
  w.I32(in.role);
  w.I32(in.cores);
  w.F64(in.memory_gb);
  w.I32(in.size_index);
  w.I32(in.region);
  w.I32(in.deploy_hour);
  w.I32(in.deploy_dow);
  w.I32(in.service_id);
}

core::ClientInputs DecodeInputs(ByteReader& r) {
  core::ClientInputs in;
  in.subscription_id = r.U64();
  in.vm_type = r.I32();
  in.guest_os = r.I32();
  in.role = r.I32();
  in.cores = r.I32();
  in.memory_gb = r.F64();
  in.size_index = r.I32();
  in.region = r.I32();
  in.deploy_hour = r.I32();
  in.deploy_dow = r.I32();
  in.service_id = r.I32();
  return in;
}

void AppendPredictSingleRequest(std::vector<uint8_t>& out, uint64_t request_id,
                                const std::string& model, const core::ClientInputs& inputs,
                                const obs::TraceContext& trace) {
  ByteWriter w;
  w.String(model);
  EncodeInputs(w, inputs);
  AppendFrame(out, Opcode::kPredictSingle, request_id, w.bytes(), kProtocolVersion,
              trace);
}

void AppendPredictManyRequest(std::vector<uint8_t>& out, uint64_t request_id,
                              const std::string& model,
                              std::span<const core::ClientInputs> inputs,
                              const obs::TraceContext& trace) {
  ByteWriter w;
  w.String(model);
  w.U32(static_cast<uint32_t>(inputs.size()));
  for (const core::ClientInputs& in : inputs) EncodeInputs(w, in);
  AppendFrame(out, Opcode::kPredictMany, request_id, w.bytes(), kProtocolVersion, trace);
}

void AppendHealthRequest(std::vector<uint8_t>& out, uint64_t request_id) {
  AppendFrame(out, Opcode::kHealth, request_id, {});
}

void AppendPredictSingleResponse(std::vector<uint8_t>& out, uint64_t request_id,
                                 const core::Prediction& prediction, uint16_t version) {
  ByteWriter w;
  EncodeStatus(w, WireStatus::kOk);
  EncodePrediction(w, prediction);
  AppendFrame(out, Opcode::kPredictSingle, request_id, w.bytes(), version);
}

void AppendPredictManyResponse(std::vector<uint8_t>& out, uint64_t request_id,
                               std::span<const core::Prediction> predictions,
                               uint16_t version) {
  ByteWriter w;
  EncodeStatus(w, WireStatus::kOk);
  w.U32(static_cast<uint32_t>(predictions.size()));
  for (const core::Prediction& p : predictions) EncodePrediction(w, p);
  AppendFrame(out, Opcode::kPredictMany, request_id, w.bytes(), version);
}

void AppendHealthResponse(std::vector<uint8_t>& out, uint64_t request_id,
                          const HealthResponse& health, uint16_t version) {
  ByteWriter w;
  EncodeStatus(w, WireStatus::kOk);
  w.U64(health.requests);
  w.U64(health.predictions);
  w.U64(health.protocol_errors);
  w.U64(health.active_connections);
  w.U32(health.num_models);
  AppendFrame(out, Opcode::kHealth, request_id, w.bytes(), version);
}

void AppendErrorResponse(std::vector<uint8_t>& out, Opcode opcode, uint64_t request_id,
                         WireStatus status, std::string_view message, uint16_t version) {
  ByteWriter w;
  EncodeStatus(w, status);
  w.String(message);
  AppendFrame(out, opcode, request_id, w.bytes(), version);
}

WireStatus DecodeHeader(ByteReader& r, FrameHeader* header) {
  *header = FrameHeader{};
  if (r.remaining() < kHeaderBytesV1) return WireStatus::kMalformed;
  header->magic = r.U32();
  header->version = r.Pod<uint16_t>();
  header->opcode = r.Pod<uint16_t>();
  header->request_id = r.U64();
  if (header->magic != kMagic) return WireStatus::kBadMagic;
  if (header->version != kProtocolVersion && header->version != kProtocolVersionV1) {
    return WireStatus::kBadVersion;
  }
  if (header->version >= kProtocolVersion) {
    // v2: flags byte, then any optional blocks it announces — each length
    // checked against the remaining bytes before it is read.
    if (r.remaining() < 1) return WireStatus::kMalformed;
    header->flags = r.Pod<uint8_t>();
    if ((header->flags & ~kFlagTraceContext) != 0) return WireStatus::kMalformed;
    if (header->flags & kFlagTraceContext) {
      if (r.remaining() < kTraceWireBytes) return WireStatus::kMalformed;
      header->trace.trace_id = r.U64();
      header->trace.span_id = r.U64();
      header->trace.sampled = r.Pod<uint8_t>() != 0;
    }
  }
  switch (static_cast<Opcode>(header->opcode)) {
    case Opcode::kPredictSingle:
    case Opcode::kPredictMany:
    case Opcode::kHealth:
      return WireStatus::kOk;
  }
  return WireStatus::kBadOpcode;
}

WireStatus DecodePredictSingleRequest(ByteReader& r, PredictSingleRequest* out) {
  try {
    out->model = r.String();
    out->inputs = DecodeInputs(r);
    if (!r.AtEnd()) return WireStatus::kMalformed;  // trailing garbage
  } catch (const std::exception&) {
    return WireStatus::kMalformed;
  }
  return WireStatus::kOk;
}

WireStatus DecodePredictManyRequest(ByteReader& r, size_t max_batch,
                                    PredictManyRequest* out) {
  try {
    out->model = r.String();
    uint32_t count = r.U32();
    if (count > max_batch) return WireStatus::kBatchTooLarge;
    // Validate the announced count against the bytes actually present
    // before allocating (a flipped count byte must not drive a huge resize).
    if (static_cast<size_t>(count) * kInputsWireBytes != r.remaining()) {
      return WireStatus::kMalformed;
    }
    out->inputs.resize(count);
    for (uint32_t i = 0; i < count; ++i) out->inputs[i] = DecodeInputs(r);
  } catch (const std::exception&) {
    return WireStatus::kMalformed;
  }
  return WireStatus::kOk;
}

bool DecodePredictSingleResponse(ByteReader& r, WireStatus* remote_status,
                                 core::Prediction* out, std::string* error) {
  if (!ReadStatus(r, remote_status, error)) return false;
  if (*remote_status != WireStatus::kOk) return true;
  try {
    *out = DecodePrediction(r);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool DecodePredictManyResponse(ByteReader& r, size_t max_batch, WireStatus* remote_status,
                               std::vector<core::Prediction>* out, std::string* error) {
  if (!ReadStatus(r, remote_status, error)) return false;
  if (*remote_status != WireStatus::kOk) return true;
  try {
    uint32_t count = r.U32();
    constexpr size_t kPredictionWireBytes = 1 + 4 + 8;
    if (count > max_batch || static_cast<size_t>(count) * kPredictionWireBytes != r.remaining()) {
      return false;
    }
    out->resize(count);
    for (uint32_t i = 0; i < count; ++i) (*out)[i] = DecodePrediction(r);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

bool DecodeHealthResponse(ByteReader& r, WireStatus* remote_status, HealthResponse* out,
                          std::string* error) {
  if (!ReadStatus(r, remote_status, error)) return false;
  if (*remote_status != WireStatus::kOk) return true;
  try {
    out->requests = r.U64();
    out->predictions = r.U64();
    out->protocol_errors = r.U64();
    out->active_connections = r.U64();
    out->num_models = r.U32();
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace rc::net
