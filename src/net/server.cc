#include "src/net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/faults.h"
#include "src/core/batch_combiner.h"
#include "src/obs/trace_events.h"

namespace rc::net {

namespace {

// One epoll_wait round drains at most this many events per worker.
constexpr int kMaxEpollEvents = 64;
constexpr size_t kReadChunk = 64 * 1024;

}  // namespace

ssize_t ReadEintr(int fd, void* buf, size_t n) {
  for (;;) {
    ssize_t r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

ssize_t WriteEintr(int fd, const void* buf, size_t n) {
  for (;;) {
    ssize_t r = ::write(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

int AcceptEintr(int fd) {
  for (;;) {
    int c = ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (c >= 0 || errno != EINTR) return c;
  }
}

Server::Server(rc::core::Client* client, ServerConfig config)
    : client_(client), config_(std::move(config)) {
  if (config_.metrics != nullptr) {
    metrics_ = config_.metrics;
  } else {
    owned_metrics_ = std::make_unique<rc::obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.connections_accepted = &metrics_->GetCounter(
      "rc_net_connections_accepted", {}, "TCP connections accepted");
  m_.connections_active =
      &metrics_->GetGauge("rc_net_connections_active", {}, "open TCP connections");
  m_.requests = &metrics_->GetCounter("rc_net_requests", {}, "frames answered");
  m_.predictions =
      &metrics_->GetCounter("rc_net_predictions", {}, "predictions served over the wire");
  m_.protocol_errors = &metrics_->GetCounter(
      "rc_net_protocol_errors", {}, "malformed frames answered with an error response");
  m_.bytes_read = &metrics_->GetCounter("rc_net_bytes_read", {}, "request bytes read");
  m_.bytes_written =
      &metrics_->GetCounter("rc_net_bytes_written", {}, "response bytes written");
  m_.request_latency_us = &metrics_->GetHistogram(
      "rc_net_request_latency_us", {}, {}, "server-side frame handle latency (us)");
}

Server::~Server() { Stop(); }

std::unique_ptr<rc::core::BatchCombiner> Server::MakeCombiner(
    rc::obs::Labels labels) const {
  rc::core::BatchCombinerConfig cc;
  cc.max_wait_us = config_.combiner_max_wait_us;
  cc.max_batch = config_.combiner_max_batch;
  cc.fast_path_when_idle = config_.combiner_fast_path_when_idle;
  // The server-owned combiner fronts PredictSingle itself, so it must probe
  // the result cache to keep hits from parking.
  cc.probe_result_cache = true;
  cc.clock = config_.clock;
  cc.metrics = metrics_;
  cc.metric_labels = std::move(labels);
  return std::make_unique<rc::core::BatchCombiner>(client_, std::move(cc));
}

rc::core::BatchCombiner* Server::CombinerFor(Worker& worker) const {
  return worker.combiner != nullptr ? worker.combiner.get() : shared_combiner_.get();
}

bool Server::Start() {
  if (running_.load(std::memory_order_acquire)) return true;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return false;
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 512) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }

  if (config_.combiner_mode == CombinerMode::kShared) {
    shared_combiner_ = MakeCombiner({{"scope", "shared"}});
  }
  int workers = config_.num_workers > 0 ? config_.num_workers : 1;
  for (int i = 0; i < workers; ++i) {
    auto worker = std::make_unique<Worker>();
    if (config_.combiner_mode == CombinerMode::kPerWorker) {
      worker->combiner = MakeCombiner({{"scope", "worker"}, {"worker", std::to_string(i)}});
    }
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
      Stop();
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake_fd;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev);
    // EPOLLEXCLUSIVE: the kernel wakes one worker per pending accept instead
    // of thundering every epoll set registered on the listener.
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
    workers_.push_back(std::move(worker));
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    worker->thread = std::thread([this, w = worker.get()] { WorkerLoop(*w); });
  }
  return true;
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Start() may have half-initialized workers before failing.
    for (auto& worker : workers_) {
      if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
      if (worker->wake_fd >= 0) ::close(worker->wake_fd);
    }
    workers_.clear();
    shared_combiner_.reset();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // Drain combiners first: a worker thread parked in a combiner window must
  // be released before its wake_fd write can matter (requests parked at that
  // instant are answered ok=false by the shutdown drain; the handler falls
  // back to a direct PredictSingle, so no frame goes unanswered).
  if (shared_combiner_ != nullptr) shared_combiner_->Shutdown();
  for (auto& worker : workers_) {
    if (worker->combiner != nullptr) worker->combiner->Shutdown();
  }
  for (auto& worker : workers_) {
    uint64_t one = 1;
    (void)WriteEintr(worker->wake_fd, &one, sizeof(one));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
    // A handoff racing with shutdown can land after the target drained its
    // pending queue; all workers are joined now, so sweep without racing.
    for (int fd : worker->pending_fds) ::close(fd);
    worker->pending_fds.clear();
    if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
    if (worker->wake_fd >= 0) ::close(worker->wake_fd);
  }
  workers_.clear();
  shared_combiner_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

HealthResponse Server::Health() const {
  HealthResponse h;
  h.requests = m_.requests->Value();
  h.predictions = m_.predictions->Value();
  h.protocol_errors = m_.protocol_errors->Value();
  h.active_connections = active_connections_.load(std::memory_order_relaxed);
  h.num_models = static_cast<uint32_t>(client_->GetAvailableModels().size());
  return h;
}

void Server::WorkerLoop(Worker& worker) {
  epoll_event events[kMaxEpollEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(worker.epoll_fd, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == worker.wake_fd) {
        uint64_t drain;
        (void)ReadEintr(worker.wake_fd, &drain, sizeof(drain));
        // Adopt connections handed over by another worker's accept loop.
        std::vector<int> adopted;
        {
          std::lock_guard<std::mutex> lock(worker.pending_mu);
          adopted.swap(worker.pending_fds);
        }
        for (int pending_fd : adopted) AdoptConnection(worker, pending_fd);
        continue;  // loop condition re-checks stopping_
      }
      if (fd == listen_fd_) {
        AcceptReady(worker);
        continue;
      }
      auto it = worker.conns.find(fd);
      if (it == worker.conns.end()) continue;  // closed earlier this round
      Connection& conn = *it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(worker, fd);
        continue;
      }
      if ((mask & EPOLLIN) != 0 && !ReadReady(worker, conn)) continue;
      if ((mask & EPOLLOUT) != 0) WriteReady(worker, conn);
    }
  }
  // Drain: close every connection this worker owns, plus any handed-over
  // sockets never adopted (Stop() sweeps handoffs that race with shutdown).
  std::vector<int> fds;
  fds.reserve(worker.conns.size());
  for (const auto& [fd, conn] : worker.conns) fds.push_back(fd);
  for (int fd : fds) CloseConnection(worker, fd);
  std::lock_guard<std::mutex> lock(worker.pending_mu);
  for (int fd : worker.pending_fds) ::close(fd);
  worker.pending_fds.clear();
}

void Server::AcceptReady(Worker& worker) {
  // EPOLLEXCLUSIVE wakes one worker per readiness edge, but this loop drains
  // the whole backlog — a burst of simultaneous connects would otherwise all
  // land on the worker that happened to wake first. Since a worker handles
  // its connections' frames serially (and may park in the shared combiner),
  // piling every connection onto one worker both serializes the load and
  // starves the combiner of concurrent arrivals. Round-robin each accepted
  // socket across workers instead: remote ones go through the target's
  // pending queue and are registered by the target itself (epoll sets and
  // conns maps stay worker-local).
  for (;;) {
    int fd = AcceptEintr(listen_fd_);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE) continue;
      return;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    size_t target_idx = static_cast<size_t>(
        next_worker_.fetch_add(1, std::memory_order_relaxed) % workers_.size());
    Worker& target = *workers_[target_idx];
    if (&target == &worker) {
      AdoptConnection(worker, fd);
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(target.pending_mu);
      target.pending_fds.push_back(fd);
    }
    uint64_t nudge = 1;
    (void)WriteEintr(target.wake_fd, &nudge, sizeof(nudge));
  }
}

void Server::AdoptConnection(Worker& worker, int fd) {
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  worker.conns.emplace(fd, std::move(conn));
  m_.connections_accepted->Increment();
  active_connections_.fetch_add(1, std::memory_order_relaxed);
  m_.connections_active->Set(
      static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
}

bool Server::ReadReady(Worker& worker, Connection& conn) {
  // Timed manually, not with a TraceSpan: the trace context arrives inside
  // the frames this read produces, so the span is recorded retroactively per
  // frame in HandleFrame (RecordSpanUnder) once the header is decoded.
  conn.read_start_ns = rc::obs::NowNs();
  for (;;) {
    size_t old = conn.in.size();
    conn.in.resize(old + kReadChunk);
    ssize_t r = ReadEintr(conn.fd, conn.in.data() + old, kReadChunk);
    if (r > 0) {
      conn.in.resize(old + static_cast<size_t>(r));
      m_.bytes_read->Increment(static_cast<uint64_t>(r));
      if (static_cast<size_t>(r) < kReadChunk) break;  // drained the socket
      continue;
    }
    conn.in.resize(old);
    if (r == 0) {  // peer closed; answer nothing further
      CloseConnection(worker, conn.fd);
      return false;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(worker, conn.fd);
    return false;
  }
  conn.read_dur_ns = rc::obs::NowNs() - conn.read_start_ns;
  ProcessFrames(worker, conn);
  if (!WriteReady(worker, conn)) return false;
  return true;
}

void Server::ProcessFrames(Worker& worker, Connection& conn) {
  size_t off = 0;
  while (!conn.want_close && conn.in.size() - off >= kLengthPrefixBytes) {
    uint32_t payload_len;
    std::memcpy(&payload_len, conn.in.data() + off, sizeof(payload_len));
    if (payload_len > config_.max_frame_bytes) {
      // The length cannot be trusted, so the stream cannot be resynchronized:
      // answer the protocol error, then close once it is flushed.
      m_.protocol_errors->Increment();
      m_.requests->Increment();
      AppendErrorResponse(conn.out, Opcode::kPredictSingle, 0, WireStatus::kFrameTooLarge,
                          ToString(WireStatus::kFrameTooLarge));
      conn.want_close = true;
      break;
    }
    if (conn.in.size() - off < kLengthPrefixBytes + payload_len) break;  // partial frame
    HandleFrame(worker, conn, conn.in.data() + off + kLengthPrefixBytes, payload_len);
    off += kLengthPrefixBytes + payload_len;
  }
  if (off > 0) conn.in.erase(conn.in.begin(), conn.in.begin() + static_cast<ptrdiff_t>(off));
}

void Server::HandleFrame(Worker& worker, Connection& conn, const uint8_t* payload,
                         size_t size) {
  uint64_t start_ns = rc::obs::NowNs();
  m_.requests->Increment();
  rc::ml::ByteReader r(payload, size);
  FrameHeader header;
  WireStatus status = DecodeHeader(r, &header);
  // Echo the opcode when the header parsed far enough to carry one, and the
  // request's version so v1 peers can parse their replies (a garbage version
  // is answered in v2 — that peer already failed the handshake).
  Opcode opcode = static_cast<Opcode>(header.opcode);
  const uint16_t wire_version =
      header.version == kProtocolVersionV1 ? kProtocolVersionV1 : kProtocolVersion;
  if (status != WireStatus::kOk) {
    m_.protocol_errors->Increment();
    AppendErrorResponse(conn.out, opcode, header.request_id, status, ToString(status),
                        wire_version);
    return;
  }

  // Adopt the propagated trace for this frame: spans below (net/predict, the
  // combiner, the client) parent into the caller's tree. The socket read that
  // delivered the frame is recorded retroactively as a sibling span, and the
  // response write + server-side finish happen when the reply drains.
  rc::obs::ScopedTraceContext trace_scope(header.trace);
  if (header.trace.valid()) {
    rc::obs::RecordSpanUnder("net/read_frame", header.trace, conn.read_start_ns,
                             conn.read_dur_ns);
    conn.pending_trace = header.trace;
    conn.pending_trace_start_ns = conn.read_start_ns;
  }

  // Deterministic fault site for tests: injected latency delays the response
  // past a client deadline; an injected error exercises the kInternal path.
  rc::faults::InjectLatency("net/handle");
  if (rc::faults::InjectError("net/handle")) {
    AppendErrorResponse(conn.out, opcode, header.request_id, WireStatus::kInternal,
                        "injected fault", wire_version);
    return;
  }

  rc::obs::TraceSpan span("net/predict");
  switch (opcode) {
    case Opcode::kPredictSingle: {
      PredictSingleRequest req;
      status = DecodePredictSingleRequest(r, &req);
      if (status != WireStatus::kOk) break;
      core::Prediction p;
      rc::core::BatchCombiner* combiner = CombinerFor(worker);
      if (combiner != nullptr) {
        rc::core::CombineResult coalesced = combiner->Predict(req.model, req.inputs);
        // ok=false only during Stop()'s drain; answer directly so the frame
        // still gets its response before the connection closes.
        p = coalesced.ok ? coalesced.prediction
                         : client_->PredictSingle(req.model, req.inputs);
      } else {
        p = client_->PredictSingle(req.model, req.inputs);
      }
      m_.predictions->Increment();
      AppendPredictSingleResponse(conn.out, header.request_id, p, wire_version);
      m_.request_latency_us->Record(static_cast<double>(rc::obs::NowNs() - start_ns) / 1000.0);
      return;
    }
    case Opcode::kPredictMany: {
      PredictManyRequest req;
      status = DecodePredictManyRequest(r, config_.max_batch, &req);
      if (status != WireStatus::kOk) break;
      std::vector<core::Prediction> predictions = client_->PredictMany(req.model, req.inputs);
      m_.predictions->Increment(predictions.size());
      AppendPredictManyResponse(conn.out, header.request_id, predictions, wire_version);
      m_.request_latency_us->Record(static_cast<double>(rc::obs::NowNs() - start_ns) / 1000.0);
      return;
    }
    case Opcode::kHealth: {
      if (r.remaining() != 0) {
        status = WireStatus::kMalformed;
        break;
      }
      AppendHealthResponse(conn.out, header.request_id, Health(), wire_version);
      m_.request_latency_us->Record(static_cast<double>(rc::obs::NowNs() - start_ns) / 1000.0);
      return;
    }
  }
  m_.protocol_errors->Increment();
  AppendErrorResponse(conn.out, opcode, header.request_id, status, ToString(status),
                      wire_version);
}

bool Server::WriteReady(Worker& worker, Connection& conn) {
  const bool had_output = conn.out_off < conn.out.size();
  const uint64_t write_start_ns = had_output ? rc::obs::NowNs() : 0;
  while (conn.out_off < conn.out.size()) {
    ssize_t w =
        WriteEintr(conn.fd, conn.out.data() + conn.out_off, conn.out.size() - conn.out_off);
    if (w > 0) {
      conn.out_off += static_cast<size_t>(w);
      m_.bytes_written->Increment(static_cast<uint64_t>(w));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return UpdateEpollOut(worker, conn, true);
    }
    CloseConnection(worker, conn.fd);  // EPIPE/ECONNRESET/...
    return false;
  }
  conn.out.clear();
  conn.out_off = 0;
  if (had_output && conn.pending_trace.valid()) {
    // The response left the socket: record the write span into the caller's
    // tree and finish the trace server-side — for traces rooted in a remote
    // process nothing else would, and for loopback roots FinishTrace is
    // idempotent (first caller classifies; late spans still attach).
    const uint64_t now_ns = rc::obs::NowNs();
    rc::obs::RecordSpanUnder("net/write_frame", conn.pending_trace, write_start_ns,
                             now_ns - write_start_ns);
    rc::obs::TraceStore::Global().FinishTrace(conn.pending_trace.trace_id,
                                              now_ns - conn.pending_trace_start_ns);
    conn.pending_trace = rc::obs::TraceContext{};
  }
  if (conn.want_close) {
    CloseConnection(worker, conn.fd);
    return false;
  }
  return UpdateEpollOut(worker, conn, false);
}

bool Server::UpdateEpollOut(Worker& worker, Connection& conn, bool want) {
  if (conn.epollout_armed == want) return true;
  epoll_event ev{};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.fd = conn.fd;
  if (::epoll_ctl(worker.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev) != 0) {
    CloseConnection(worker, conn.fd);
    return false;
  }
  conn.epollout_armed = want;
  return true;
}

void Server::CloseConnection(Worker& worker, int fd) {
  auto it = worker.conns.find(fd);
  if (it == worker.conns.end()) return;
  ::epoll_ctl(worker.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  worker.conns.erase(it);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  m_.connections_active->Set(
      static_cast<double>(active_connections_.load(std::memory_order_relaxed)));
}

}  // namespace rc::net
