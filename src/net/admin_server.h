// Minimal HTTP/1.0 introspection endpoint (DESIGN.md "Tracing &
// introspection"). One thread runs a non-blocking epoll loop (the same
// EINTR-safe IO helpers as the RCNP server) serving GET-only routes —
// rc_server mounts /metrics, /healthz, /varz and /tracez on it. It is an
// operator surface, deliberately not a web server:
//
//  * HTTP/1.0 semantics: one request per connection, response carries
//    Content-Length and Connection: close, the socket closes after the
//    flush. No keep-alive, no chunking, no TLS.
//  * requests are read until the blank line ending the header block;
//    dribbled requests (byte-at-a-time) just keep buffering. A request
//    exceeding max_request_bytes without completing is answered 414 and the
//    connection closed; a request line that is not `GET <path> HTTP/x.y` is
//    answered 400. The listener survives all of this — one bad client never
//    takes the endpoint down (pinned by tests/net/admin_server_test.cc).
//  * handlers run on the admin thread and must be thread-safe; they return
//    a complete body (status, content type, bytes). The query string is
//    stripped before route lookup; unknown paths are 404.
#ifndef RC_SRC_NET_ADMIN_SERVER_H_
#define RC_SRC_NET_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace rc::net {

struct AdminServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read back via port()
  // Ceiling on buffered request bytes before the header block completes;
  // beyond it the request is answered 414 (URI/headers too long).
  size_t max_request_bytes = 8192;
};

class AdminServer {
 public:
  struct Response {
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
  };
  using Handler = std::function<Response()>;

  explicit AdminServer(AdminServerConfig config);
  ~AdminServer();

  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  // Registers `handler` for GET `path` (exact match after the query string
  // is stripped). Must be called before Start().
  void Handle(std::string path, Handler handler);

  // Binds, listens, and starts the admin thread. False on socket errors.
  bool Start();
  // Closes every connection and joins the thread. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }

 private:
  struct Conn {
    int fd = -1;
    std::vector<uint8_t> in;
    std::string out;
    size_t out_off = 0;
    bool responded = false;  // response queued; close once it drains
    bool epollout_armed = false;
  };

  void Loop();
  void AcceptReady();
  // False when the connection was closed and erased.
  bool ReadReady(Conn& conn);
  bool WriteReady(Conn& conn);
  // Inspects conn.in; once the header block (or an error condition) is
  // complete, queues the response and marks the connection responded.
  void MaybeRespond(Conn& conn);
  void QueueResponse(Conn& conn, const Response& response);
  void CloseConn(int fd);
  bool UpdateEpollOut(Conn& conn, bool want);

  AdminServerConfig config_;
  std::unordered_map<std::string, Handler> routes_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::unordered_map<int, std::unique_ptr<Conn>> conns_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
};

}  // namespace rc::net

#endif  // RC_SRC_NET_ADMIN_SERVER_H_
