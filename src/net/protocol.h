// Wire protocol for the RC prediction service (DESIGN.md "Network
// service"). The paper's Resource Central is a datacenter service behind a
// client-side DLL; this is the framing that service speaks.
//
// Every frame — request or response — is length-prefixed and carries a
// fixed header, so a reader can always resynchronize on frame boundaries
// and validate before allocating:
//
//   offset  size  field
//        0     4  payload_len   (bytes after this field; <= max_frame_bytes)
//        4     4  magic         'RCNP' (0x504E4352 little-endian)
//        8     2  version       1 (legacy) or 2
//       10     2  opcode        Opcode (request) / same opcode echoed (response)
//       12     8  request_id    echoed verbatim in the response
//   v2 only:
//       20     1  flags         bit 0: trace-context block follows
//   v2, flags bit 0 set:
//       21     8  trace_id      rc::obs::TraceContext propagated end-to-end
//       29     8  span_id       the sender's span (becomes the parent here)
//       37     1  sampled
//        …     …  body          opcode-specific
//
// Version 2 adds the flags byte and the optional trace-context block
// (DESIGN.md "Tracing & introspection"); version-1 frames are still decoded
// (no flags byte) and answered with version-1 responses, so old peers keep
// round-tripping against a new server. Unknown v2 flag bits are kMalformed:
// the frame length cannot be interpreted without knowing every block.
//
// Response bodies always begin with a u16 WireStatus; a non-kOk status is
// followed by a length-prefixed error string and nothing else. Integers are
// little-endian (rc::ml::ByteWriter/ByteReader); the decoder validates
// counts against the remaining byte budget BEFORE allocating (the same
// hardening discipline as the model deserializers).
#ifndef RC_SRC_NET_PROTOCOL_H_
#define RC_SRC_NET_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/core/prediction.h"
#include "src/ml/bytes.h"
#include "src/obs/trace_context.h"

namespace rc::net {

inline constexpr uint32_t kMagic = 0x504E4352u;  // "RCNP" in LE byte order
inline constexpr uint16_t kProtocolVersion = 2;
inline constexpr uint16_t kProtocolVersionV1 = 1;  // legacy, still accepted
// Fixed v2 header after the length prefix: magic + version + opcode +
// request id + flags. The optional trace block is not part of this count.
inline constexpr size_t kHeaderBytes = 4 + 2 + 2 + 8 + 1;
// The v1 header had no flags byte.
inline constexpr size_t kHeaderBytesV1 = 4 + 2 + 2 + 8;
// Optional v2 trace-context block: trace_id + span_id + sampled.
inline constexpr size_t kTraceWireBytes = 8 + 8 + 1;
inline constexpr uint8_t kFlagTraceContext = 0x01;
inline constexpr size_t kLengthPrefixBytes = 4;
// Default ceiling on payload_len; a peer announcing more is answered with
// kFrameTooLarge and disconnected (the stream cannot be resynchronized
// without trusting the length).
inline constexpr size_t kDefaultMaxFrameBytes = 4u << 20;
// Hard cap on PredictMany batch size (also bounds response frames).
inline constexpr size_t kMaxBatch = 8192;
// Encoded size of one ClientInputs record (u64 + 9 * i32 + f64).
inline constexpr size_t kInputsWireBytes = 8 + 4 * 9 + 8;

enum class Opcode : uint16_t {
  kPredictSingle = 1,
  kPredictMany = 2,
  kHealth = 3,
};

enum class WireStatus : uint16_t {
  kOk = 0,
  kBadMagic = 1,
  kBadVersion = 2,
  kBadOpcode = 3,
  kMalformed = 4,       // body failed to decode (truncated / inconsistent)
  kFrameTooLarge = 5,   // announced payload_len above the server's ceiling
  kBatchTooLarge = 6,   // PredictMany count above kMaxBatch
  kInternal = 7,        // server-side failure (e.g. injected fault)
};
const char* ToString(WireStatus status);

struct FrameHeader {
  uint32_t magic = kMagic;
  uint16_t version = kProtocolVersion;
  uint16_t opcode = 0;
  uint64_t request_id = 0;
  uint8_t flags = 0;         // v2 only; 0 for decoded v1 frames
  obs::TraceContext trace;   // filled when kFlagTraceContext was set
};

struct PredictSingleRequest {
  std::string model;
  core::ClientInputs inputs;
};

struct PredictManyRequest {
  std::string model;
  std::vector<core::ClientInputs> inputs;
};

// Health/stats opcode payload: a cheap liveness probe that also exposes the
// server's core counters without scraping the metrics endpoint.
struct HealthResponse {
  uint64_t requests = 0;          // frames answered (all opcodes)
  uint64_t predictions = 0;       // predictions served (batch elements count)
  uint64_t protocol_errors = 0;   // malformed frames answered with an error
  uint64_t active_connections = 0;
  uint32_t num_models = 0;        // models currently loaded in the client
};

// --- encode (append a complete frame, length prefix included, to `out`) ---

// `version` selects the header layout (responses echo the request's
// version so legacy peers can parse their replies); `trace`, when valid,
// rides in the v2 trace-context block and is ignored for v1 frames.
void AppendFrame(std::vector<uint8_t>& out, Opcode opcode, uint64_t request_id,
                 std::span<const uint8_t> body,
                 uint16_t version = kProtocolVersion,
                 const obs::TraceContext& trace = {});

void AppendPredictSingleRequest(std::vector<uint8_t>& out, uint64_t request_id,
                                const std::string& model, const core::ClientInputs& inputs,
                                const obs::TraceContext& trace = {});
void AppendPredictManyRequest(std::vector<uint8_t>& out, uint64_t request_id,
                              const std::string& model,
                              std::span<const core::ClientInputs> inputs,
                              const obs::TraceContext& trace = {});
void AppendHealthRequest(std::vector<uint8_t>& out, uint64_t request_id);

void AppendPredictSingleResponse(std::vector<uint8_t>& out, uint64_t request_id,
                                 const core::Prediction& prediction,
                                 uint16_t version = kProtocolVersion);
void AppendPredictManyResponse(std::vector<uint8_t>& out, uint64_t request_id,
                               std::span<const core::Prediction> predictions,
                               uint16_t version = kProtocolVersion);
void AppendHealthResponse(std::vector<uint8_t>& out, uint64_t request_id,
                          const HealthResponse& health,
                          uint16_t version = kProtocolVersion);
// Error response for any opcode: status + message, echoing the request id
// (0 when the header itself was unreadable).
void AppendErrorResponse(std::vector<uint8_t>& out, Opcode opcode, uint64_t request_id,
                         WireStatus status, std::string_view message,
                         uint16_t version = kProtocolVersion);

// --- decode ---

// Reads the fixed header from `r`, which must be positioned at the start of
// a frame payload (after the length prefix). Accepts versions 1 and 2 and
// leaves the reader positioned at the opcode body either way (for v2 it
// consumes the flags byte and, when present, the trace block — validated
// against the remaining bytes before any body decoding). Returns kOk and
// fills `header` when the header is structurally valid; a non-kOk result
// tells the caller which error frame to answer with. The request id is
// filled whenever at least the full header was present, so error replies
// can echo it.
WireStatus DecodeHeader(rc::ml::ByteReader& r, FrameHeader* header);

// Body decoders; the reader must be positioned right after the header.
// Return kOk on success; kMalformed / kBatchTooLarge otherwise. Never throw
// and never allocate more than the remaining byte budget justifies.
WireStatus DecodePredictSingleRequest(rc::ml::ByteReader& r, PredictSingleRequest* out);
WireStatus DecodePredictManyRequest(rc::ml::ByteReader& r, size_t max_batch,
                                    PredictManyRequest* out);

// Response decoders used by the pooled client. `remote_status` receives the
// wire status; predictions/health are only filled when it is kOk. The bool
// result is false when the response body itself is malformed.
bool DecodePredictSingleResponse(rc::ml::ByteReader& r, WireStatus* remote_status,
                                 core::Prediction* out, std::string* error);
bool DecodePredictManyResponse(rc::ml::ByteReader& r, size_t max_batch,
                               WireStatus* remote_status,
                               std::vector<core::Prediction>* out, std::string* error);
bool DecodeHealthResponse(rc::ml::ByteReader& r, WireStatus* remote_status,
                          HealthResponse* out, std::string* error);

// Shared helpers (used by tests to build hand-crafted frames).
void EncodeInputs(rc::ml::ByteWriter& w, const core::ClientInputs& inputs);
core::ClientInputs DecodeInputs(rc::ml::ByteReader& r);  // throws on truncation

}  // namespace rc::net

#endif  // RC_SRC_NET_PROTOCOL_H_
