// TCP prediction server: the network front-end that turns the in-process
// client library into the paper's datacenter service. N worker threads each
// run a non-blocking epoll loop; the listening socket is registered in every
// worker's epoll set with EPOLLEXCLUSIVE, so the kernel wakes one worker per
// pending accept. Accepted sockets are spread round-robin across workers
// (the accepting worker hands remote ones over through a pending queue +
// eventfd nudge), and the adopting worker owns the connection for its
// lifetime (per-connection state is worker-local — no cross-thread locking
// on the request path). Request handling calls straight into
// core::Client::PredictSingle/PredictMany, so the batched ExecEngine path,
// result caches, and degradation behavior of the in-process library all
// carry over unchanged.
//
// Robustness contract (pinned by tests/net/frame_fuzz_test.cc):
//  * every read/write/accept retries EINTR and handles short counts;
//  * a malformed frame (bad magic/version/opcode, truncated or inconsistent
//    body) is answered with a protocol-error response, not a disconnect —
//    the length prefix keeps the stream framed;
//  * only an announced payload length above max_frame_bytes forces a close
//    (the stream cannot be resynchronized without trusting the length), and
//    even then the error response is flushed first.
#ifndef RC_SRC_NET_SERVER_H_
#define RC_SRC_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/core/client.h"
#include "src/net/protocol.h"
#include "src/obs/metrics.h"

namespace rc::net {

// Where kPredictSingle coalescing happens (DESIGN.md "Cross-request
// batching"). kShared gives one BatchCombiner all worker threads park in, so
// concurrent singles across connections coalesce into one ExecEngine walk.
// kPerWorker gives each worker its own combiner: no cross-worker contention,
// but a worker thread processes frames serially, so batches only form
// against an in-flight dispatch (handoff) — it is the measured control arm
// that shows where the coalescing win actually comes from (bench/perf_net
// --combiner). kOff routes straight to core::Client::PredictSingle.
enum class CombinerMode { kOff, kShared, kPerWorker };

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port back via port()
  int num_workers = 4;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  size_t max_batch = kMaxBatch;
  // Registry receiving the rc_net_* instruments; null = private registry
  // (same convention as core::Client).
  rc::obs::MetricsRegistry* metrics = nullptr;

  // Cross-request batching of kPredictSingle frames. The server-owned
  // combiner probes the client's result cache first (hits never park), so
  // enabling it only changes scheduling, never results.
  CombinerMode combiner_mode = CombinerMode::kOff;
  int64_t combiner_max_wait_us = 40;
  size_t combiner_max_batch = 64;
  bool combiner_fast_path_when_idle = true;
  // Injected time source for the combiner window; null = MonotonicClock.
  rc::common::Clock* clock = nullptr;
};

class Server {
 public:
  // The core client must be initialized and outlive the server.
  Server(rc::core::Client* client, ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds, listens, and starts the worker threads. False on socket errors
  // (address in use, bad bind address, ...). Idempotent once started.
  bool Start();
  // Stops accepting, closes every connection, joins the workers. Safe to
  // call twice; called by the destructor.
  void Stop();

  // The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  rc::obs::MetricsRegistry& metrics() const { return *metrics_; }

  // Counters surfaced through the health opcode.
  HealthResponse Health() const;

 private:
  struct Connection {
    int fd = -1;
    std::vector<uint8_t> in;    // unparsed request bytes
    std::vector<uint8_t> out;   // unsent response bytes
    size_t out_off = 0;         // sent prefix of `out`
    bool want_close = false;    // close after `out` drains
    bool epollout_armed = false;
    // Timing of the socket-read burst that produced the buffered frames; the
    // synthetic net/read_frame span is recorded per frame once the frame's
    // trace context is known (the read happens before the header is parsed).
    uint64_t read_start_ns = 0;
    uint64_t read_dur_ns = 0;
    // Wire trace awaiting its net/write_frame span + server-side finish once
    // the response drains. Only the newest traced frame per flush is tracked;
    // earlier ones in the same burst finish without a write span.
    rc::obs::TraceContext pending_trace;
    uint64_t pending_trace_start_ns = 0;
  };

  struct Worker {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd; written by Stop() and connection handoff
    std::thread thread;
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    // Accepted sockets handed to this worker by another worker's accept loop,
    // awaiting registration in this worker's epoll set (see AcceptReady).
    std::mutex pending_mu;
    std::vector<int> pending_fds;
    // kPerWorker mode: this worker's combiner (null otherwise).
    std::unique_ptr<rc::core::BatchCombiner> combiner;
  };

  void WorkerLoop(Worker& worker);
  void AcceptReady(Worker& worker);
  // Registers an accepted socket with `worker`'s epoll set and conns map.
  void AdoptConnection(Worker& worker, int fd);
  // False when the connection was closed and erased.
  bool ReadReady(Worker& worker, Connection& conn);
  bool WriteReady(Worker& worker, Connection& conn);
  // Parses and answers every complete frame buffered in conn.in.
  void ProcessFrames(Worker& worker, Connection& conn);
  // Decodes and dispatches one frame payload, appending the response.
  void HandleFrame(Worker& worker, Connection& conn, const uint8_t* payload, size_t size);
  // The combiner handling this worker's kPredictSingle frames (null = direct).
  rc::core::BatchCombiner* CombinerFor(Worker& worker) const;
  std::unique_ptr<rc::core::BatchCombiner> MakeCombiner(rc::obs::Labels labels) const;
  void CloseConnection(Worker& worker, int fd);
  bool UpdateEpollOut(Worker& worker, Connection& conn, bool want);

  rc::core::Client* client_;
  ServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  // kShared mode: the combiner every worker parks in (null otherwise).
  std::unique_ptr<rc::core::BatchCombiner> shared_combiner_;
  std::vector<std::unique_ptr<Worker>> workers_;
  // Round-robin cursor for spreading accepted connections across workers.
  std::atomic<uint64_t> next_worker_{0};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::unique_ptr<rc::obs::MetricsRegistry> owned_metrics_;
  rc::obs::MetricsRegistry* metrics_ = nullptr;
  struct Instruments {
    rc::obs::Counter* connections_accepted;
    rc::obs::Gauge* connections_active;
    rc::obs::Counter* requests;
    rc::obs::Counter* predictions;
    rc::obs::Counter* protocol_errors;
    rc::obs::Counter* bytes_read;
    rc::obs::Counter* bytes_written;
    rc::obs::Histogram* request_latency_us;
  } m_{};
  std::atomic<uint64_t> active_connections_{0};
};

// --- EINTR-safe syscall wrappers (shared with the pooled client) ---
// Retry the call while it fails with EINTR; other errors pass through.
// Short counts are the caller's concern (both sides loop until EAGAIN or
// their buffer is drained).
ssize_t ReadEintr(int fd, void* buf, size_t n);
ssize_t WriteEintr(int fd, const void* buf, size_t n);
int AcceptEintr(int fd);  // accept4(SOCK_NONBLOCK | SOCK_CLOEXEC)

}  // namespace rc::net

#endif  // RC_SRC_NET_SERVER_H_
