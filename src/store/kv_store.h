// The "existing highly available store" RC publishes models and feature data
// into (paper Figure 9). In production this is a replicated store present in
// each datacenter; here it is an in-process, thread-safe, versioned blob
// store with (optional) simulated access latency calibrated to the paper's
// measurements (median 2.9 ms / P99 5.6 ms for an 850-byte record) and an
// availability switch so tests can exercise the client's outage fallbacks.
//
// Concurrency (DESIGN.md "Admission-controlled caching & sharded store"):
// keys are hash-partitioned across shards, each with its own mutex and blob
// map, so concurrent clients loading *different* models no longer serialize
// during publish-heavy windows. Versions come from one store-global atomic
// counter consumed only by successful writes — globally unique and
// increasing, hence monotonic per key (writes to one key serialize on its
// shard lock and draw ever-larger tickets). Push notifications are delivered
// outside all locks but in per-shard ticket order, so a listener observes
// each key's versions in the order they were assigned.
#ifndef RC_SRC_STORE_KV_STORE_H_
#define RC_SRC_STORE_KV_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/obs/metrics.h"

namespace rc::store {

// Lognormal latency profile parameterized by median and P99.
struct LatencyProfile {
  double median_us = 2900.0;
  double p99_us = 5600.0;

  // One latency draw in microseconds.
  double SampleUs(Rng& rng) const;
};

struct VersionedBlob {
  uint64_t version = 0;
  std::vector<uint8_t> data;
  // CRC32 over `data`, stamped by KvStore::Put / DiskCache at write time.
  // Consumers verify with VerifyBlob before decoding; a mismatch means the
  // payload was corrupted or torn somewhere between publish and load.
  uint32_t crc = 0;
};

// Recomputes the payload checksum; true iff it matches the stamped CRC.
bool VerifyBlob(const VersionedBlob& blob);

class KvStore {
 public:
  struct Options {
    bool simulate_latency = false;  // busy-sleep on Get/Put when true
    LatencyProfile latency;
    uint64_t latency_seed = 99;
    // Key-hash partitions, each with its own mutex and blob map. Rounded to
    // a power of two, clamped to [1, 256]. 1 reproduces the old
    // global-mutex layout (the bench control arm).
    size_t shards = 16;
    // Registry receiving the rc_store_* instruments; null = process-global.
    rc::obs::MetricsRegistry* metrics = nullptr;
  };

  KvStore() : KvStore(Options{}) {}
  explicit KvStore(Options options);
  ~KvStore();

  // Stores bytes under key; returns the new (monotonic per key) version, or
  // 0 if the store is unavailable (the write is dropped, no version is
  // consumed, and listeners are not notified — an outage affects writes like
  // it affects reads). Versions are store-global: unique and increasing
  // across keys, not dense per key.
  uint64_t Put(const std::string& key, std::vector<uint8_t> data);

  // Read outcome, so callers can react differently to "the key is absent"
  // (authoritative miss) versus "the store could not answer" (outage or
  // injected I/O error — retry / fall back to a local mirror).
  enum class GetStatus { kOk, kNotFound, kUnavailable, kError };
  struct GetResult {
    GetStatus status = GetStatus::kNotFound;
    VersionedBlob blob;

    bool ok() const { return status == GetStatus::kOk; }
    // A failure the caller may retry or degrade around, as opposed to a miss.
    bool failed() const {
      return status == GetStatus::kUnavailable || status == GetStatus::kError;
    }
  };

  // Latest blob for key, with an explicit status.
  GetResult TryGet(const std::string& key) const;

  // Latest blob for key; nullopt if absent or the store is unavailable.
  std::optional<VersionedBlob> Get(const std::string& key) const;

  // Version lookup without transferring the payload.
  std::optional<uint64_t> GetVersion(const std::string& key) const;

  // Matching keys across all shards, in sorted order.
  std::vector<std::string> ListKeys(const std::string& prefix = "") const;

  // Simulates an outage: Get/GetVersion/ListKeys return empty until restored.
  void SetAvailable(bool available);
  bool available() const;

  // Push channel: listeners are invoked (synchronously, outside every store
  // lock) after each successful Put, in per-shard version order. Returns a
  // subscription id. Listeners may read back into the store; they must not
  // Put (delivery order is enforced with a per-shard ticket a re-entrant
  // Put would wait on — self-deadlock) and must not Unsubscribe themselves.
  using Listener = std::function<void(const std::string& key, const VersionedBlob& blob)>;
  int Subscribe(Listener listener);
  // Removes the listener AND blocks until every in-flight invocation of it
  // has returned, so the caller may destroy captured state immediately
  // afterwards. Must not be called from inside the listener itself (that
  // would self-deadlock).
  void Unsubscribe(int id);

  size_t key_count() const;

  size_t shard_count() const { return shard_mask_ + 1; }

 private:
  // A listener plus its in-flight invocation count; shared between the
  // registry and dispatching Put calls so Unsubscribe can wait for the
  // count to drain after removing the registry entry.
  struct ListenerEntry {
    Listener fn;
    int in_flight = 0;  // guarded by listeners_mu_
  };

  // One key partition. `mu` guards the blob map and ticket issuance; the
  // notify pair serializes listener delivery into ticket order without
  // holding `mu` across user code.
  struct Shard {
    mutable std::mutex mu;
    std::map<std::string, VersionedBlob> blobs;
    uint64_t next_ticket = 0;  // guarded by mu, issued with the version
    std::mutex notify_mu;
    std::condition_variable notify_cv;
    uint64_t serving_ticket = 0;  // guarded by notify_mu
  };

  Shard& ShardFor(const std::string& key) const;
  void MaybeSleep() const;

  // rc_store_* instruments; resolved once at construction, relaxed writes.
  struct Instruments {
    rc::obs::Counter* puts;
    rc::obs::Counter* puts_dropped;  // outage / injected error: write lost
    rc::obs::Counter* gets_ok;
    rc::obs::Counter* gets_notfound;
    rc::obs::Counter* gets_failed;  // unavailable or injected error
    rc::obs::Gauge* keys;
    rc::obs::Histogram* get_latency_us;
  };

  Options options_;
  Instruments m_{};
  std::unique_ptr<Shard[]> shards_;
  size_t shard_mask_ = 0;
  std::atomic<uint64_t> version_counter_{0};
  std::atomic<bool> available_{true};
  std::atomic<uint64_t> key_count_{0};

  mutable std::mutex latency_mu_;
  mutable Rng latency_rng_;

  mutable std::mutex listeners_mu_;
  std::map<int, std::shared_ptr<ListenerEntry>> listeners_;
  std::condition_variable listeners_drained_;
  int next_listener_id_ = 1;
};

}  // namespace rc::store

#endif  // RC_SRC_STORE_KV_STORE_H_
