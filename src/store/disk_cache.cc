#include "src/store/disk_cache.h"

#include <chrono>
#include <cstring>
#include <fstream>

#include "src/common/crc32.h"
#include "src/common/faults.h"
#include "src/common/hashing.h"
#include "src/obs/trace_events.h"

namespace rc::store {

namespace {

constexpr uint64_t kMagic = 0x52435f4443414348ULL;  // "RC_DCACH"

// Frame layout: magic(8) stamp(8) version(8) crc(4) size(8) payload(size).
// The CRC covers the payload only; the fixed header is validated by the magic
// and by requiring the file length to match `size` exactly, so torn writes
// (short files) and appended garbage are both rejected.
constexpr size_t kHeaderBytes = 8 + 8 + 8 + 4 + 8;

int64_t NowUnix() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

template <typename T>
void AppendPod(std::vector<uint8_t>& buf, const T& v) {
  size_t off = buf.size();
  buf.resize(off + sizeof(T));
  std::memcpy(buf.data() + off, &v, sizeof(T));
}

template <typename T>
bool ReadPod(const std::vector<uint8_t>& buf, size_t& pos, T& v) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(&v, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

DiskCache::DiskCache(std::filesystem::path dir, int64_t expiry_seconds,
                     rc::obs::MetricsRegistry* metrics)
    : dir_(std::move(dir)), expiry_seconds_(expiry_seconds) {
  std::filesystem::create_directories(dir_);
  rc::obs::MetricsRegistry& reg =
      metrics != nullptr ? *metrics : rc::obs::MetricsRegistry::Global();
  m_.writes = &reg.GetCounter("rc_disk_writes", {}, "disk-cache writes attempted");
  m_.reads_hit = &reg.GetCounter("rc_disk_reads", {{"result", "hit"}}, "reads by outcome");
  m_.reads_miss = &reg.GetCounter("rc_disk_reads", {{"result", "miss"}});
  m_.reads_expired = &reg.GetCounter("rc_disk_reads", {{"result", "expired"}});
  m_.reads_corrupt = &reg.GetCounter("rc_disk_reads", {{"result", "corrupt"}});
}

std::filesystem::path DiskCache::PathFor(const std::string& key) const {
  // Sanitize: keep alphanumerics, replace the rest; suffix with a hash so
  // distinct keys cannot collide after sanitization.
  std::string name;
  name.reserve(key.size() + 20);
  for (char c : key) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  name += "_" + std::to_string(Fnv1a(key));
  name += ".rccache";
  return dir_ / name;
}

void DiskCache::Put(const std::string& key, const VersionedBlob& blob, int64_t now_unix) {
  rc::obs::TraceSpan span("disk/write");
  m_.writes->Increment();
  if (now_unix < 0) now_unix = NowUnix();
  if (faults::InjectError("disk/write")) return;  // cache writes are best-effort
  std::vector<uint8_t> frame;
  frame.reserve(kHeaderBytes + blob.data.size());
  AppendPod(frame, kMagic);
  AppendPod(frame, now_unix);
  AppendPod(frame, blob.version);
  AppendPod(frame, Crc32(blob.data));  // authoritative: recomputed at write time
  AppendPod(frame, static_cast<uint64_t>(blob.data.size()));
  frame.insert(frame.end(), blob.data.begin(), blob.data.end());
  // A torn or bit-flipped write mutates the frame after it was sealed, like a
  // crash mid-write on a filesystem without atomic rename.
  faults::InjectMutation("disk/write", frame);
  std::filesystem::path tmp = PathFor(key);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache writes are best-effort
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, PathFor(key), ec);  // atomic replace
}

std::optional<VersionedBlob> DiskCache::Get(const std::string& key, int64_t now_unix) const {
  rc::obs::TraceSpan span("disk/read");
  if (now_unix < 0) now_unix = NowUnix();
  if (faults::InjectError("disk/read")) {
    m_.reads_miss->Increment();
    return std::nullopt;
  }
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) {
    m_.reads_miss->Increment();
    return std::nullopt;
  }
  std::vector<uint8_t> frame((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  faults::InjectMutation("disk/read", frame);

  auto corrupt = [this]() -> std::optional<VersionedBlob> {
    m_.reads_corrupt->Increment();
    return std::nullopt;
  };
  size_t pos = 0;
  uint64_t magic = 0;
  int64_t stamp = 0;
  VersionedBlob blob;
  uint64_t size = 0;
  if (!ReadPod(frame, pos, magic) || magic != kMagic) return corrupt();
  if (!ReadPod(frame, pos, stamp)) return corrupt();
  if (!ReadPod(frame, pos, blob.version)) return corrupt();
  if (!ReadPod(frame, pos, blob.crc)) return corrupt();
  if (!ReadPod(frame, pos, size)) return corrupt();
  if (expiry_seconds_ >= 0 && now_unix - stamp > expiry_seconds_) {
    m_.reads_expired->Increment();
    return std::nullopt;  // expired: the paper's client ignores stale disk data
  }
  if (frame.size() - pos != size) return corrupt();  // torn or padded frame
  blob.data.assign(frame.begin() + static_cast<ptrdiff_t>(pos), frame.end());
  if (Crc32(blob.data) != blob.crc) return corrupt();  // bit rot
  m_.reads_hit->Increment();
  return blob;
}

void DiskCache::Remove(const std::string& key) {
  std::error_code ec;
  std::filesystem::remove(PathFor(key), ec);
}

void DiskCache::Clear() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".rccache") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace rc::store
