#include "src/store/disk_cache.h"

#include <chrono>
#include <cstring>
#include <fstream>

#include "src/common/hashing.h"

namespace rc::store {

namespace {

constexpr uint64_t kMagic = 0x52435f4443414348ULL;  // "RC_DCACH"

int64_t NowUnix() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DiskCache::DiskCache(std::filesystem::path dir, int64_t expiry_seconds)
    : dir_(std::move(dir)), expiry_seconds_(expiry_seconds) {
  std::filesystem::create_directories(dir_);
}

std::filesystem::path DiskCache::PathFor(const std::string& key) const {
  // Sanitize: keep alphanumerics, replace the rest; suffix with a hash so
  // distinct keys cannot collide after sanitization.
  std::string name;
  name.reserve(key.size() + 20);
  for (char c : key) {
    name.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  name += "_" + std::to_string(Fnv1a(key));
  name += ".rccache";
  return dir_ / name;
}

void DiskCache::Put(const std::string& key, const VersionedBlob& blob, int64_t now_unix) {
  if (now_unix < 0) now_unix = NowUnix();
  std::filesystem::path tmp = PathFor(key);
  tmp += ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return;  // cache writes are best-effort
    uint64_t size = blob.data.size();
    out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&now_unix), sizeof(now_unix));
    out.write(reinterpret_cast<const char*>(&blob.version), sizeof(blob.version));
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(blob.data.data()),
              static_cast<std::streamsize>(blob.data.size()));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, PathFor(key), ec);  // atomic replace
}

std::optional<VersionedBlob> DiskCache::Get(const std::string& key, int64_t now_unix) const {
  if (now_unix < 0) now_unix = NowUnix();
  std::ifstream in(PathFor(key), std::ios::binary);
  if (!in) return std::nullopt;
  uint64_t magic = 0;
  int64_t stamp = 0;
  VersionedBlob blob;
  uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&stamp), sizeof(stamp));
  in.read(reinterpret_cast<char*>(&blob.version), sizeof(blob.version));
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  if (!in || magic != kMagic) return std::nullopt;
  if (expiry_seconds_ >= 0 && now_unix - stamp > expiry_seconds_) {
    return std::nullopt;  // expired: the paper's client ignores stale disk data
  }
  blob.data.resize(size);
  in.read(reinterpret_cast<char*>(blob.data.data()), static_cast<std::streamsize>(size));
  if (!in) return std::nullopt;
  return blob;
}

void DiskCache::Remove(const std::string& key) {
  std::error_code ec;
  std::filesystem::remove(PathFor(key), ec);
}

void DiskCache::Clear() {
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.path().extension() == ".rccache") {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

}  // namespace rc::store
