#include "src/store/kv_store.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/faults.h"
#include "src/common/hashing.h"
#include "src/obs/trace_events.h"

namespace rc::store {

namespace {

size_t ShardCountFor(size_t requested) {
  const size_t clamped = std::clamp<size_t>(requested, 1, 256);
  size_t p = 1;
  while (p < clamped) p <<= 1;
  return p;
}

}  // namespace

bool VerifyBlob(const VersionedBlob& blob) { return Crc32(blob.data) == blob.crc; }

double LatencyProfile::SampleUs(Rng& rng) const {
  // Lognormal with the requested median; sigma solved from the P99 ratio
  // (z_0.99 = 2.326).
  double mu = std::log(median_us);
  double sigma = std::log(p99_us / median_us) / 2.326;
  return rng.LogNormal(mu, sigma);
}

KvStore::KvStore(Options options)
    : options_(options), latency_rng_(options.latency_seed) {
  const size_t shard_count = ShardCountFor(options_.shards);
  shard_mask_ = shard_count - 1;
  shards_ = std::make_unique<Shard[]>(shard_count);
  rc::obs::MetricsRegistry& reg = options_.metrics != nullptr
                                      ? *options_.metrics
                                      : rc::obs::MetricsRegistry::Global();
  m_.puts = &reg.GetCounter("rc_store_puts", {}, "successful writes");
  m_.puts_dropped =
      &reg.GetCounter("rc_store_puts_dropped", {}, "writes lost to outage or error");
  m_.gets_ok = &reg.GetCounter("rc_store_gets", {{"status", "ok"}}, "reads by outcome");
  m_.gets_notfound = &reg.GetCounter("rc_store_gets", {{"status", "notfound"}});
  m_.gets_failed = &reg.GetCounter("rc_store_gets", {{"status", "failed"}});
  m_.keys = &reg.GetGauge("rc_store_keys", {}, "distinct keys stored");
  m_.get_latency_us = &reg.GetHistogram("rc_store_get_latency_us", {}, {},
                                        "TryGet latency incl. simulated profile (us)");
}

KvStore::~KvStore() = default;

KvStore::Shard& KvStore::ShardFor(const std::string& key) const {
  return shards_[HashU64(Fnv1a(key)) & shard_mask_];
}

void KvStore::MaybeSleep() const {
  if (!options_.simulate_latency) return;
  double us;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    us = options_.latency.SampleUs(latency_rng_);
  }
  std::this_thread::sleep_for(std::chrono::microseconds(static_cast<int64_t>(us)));
}

uint64_t KvStore::Put(const std::string& key, std::vector<uint8_t> data) {
  rc::obs::TraceSpan span("store/put");
  faults::InjectLatency("kv/put");
  MaybeSleep();
  if (faults::InjectError("kv/put")) {  // injected I/O error: write lost
    m_.puts_dropped->Increment();
    return 0;
  }
  Shard& s = ShardFor(key);
  VersionedBlob blob;
  uint64_t ticket;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (!available_.load(std::memory_order_acquire)) {
      // Outage: drop the write, consume no version, notify nobody.
      m_.puts_dropped->Increment();
      return 0;
    }
    VersionedBlob& entry = s.blobs[key];
    if (entry.version == 0) {
      m_.keys->Set(static_cast<double>(
          key_count_.fetch_add(1, std::memory_order_relaxed) + 1));
    }
    // The global counter is consumed only here, under the shard lock, after
    // every failure check — so versions are globally unique, increasing, and
    // (because writes to one key serialize on this lock) per-key monotonic.
    entry.version = version_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
    entry.data = std::move(data);
    entry.crc = Crc32(entry.data);
    // Corrupt-at-rest / torn-write injection happens after the CRC stamp, so
    // readers see a blob whose checksum no longer matches its payload —
    // exactly what a real partial or bit-flipped write looks like.
    faults::InjectMutation("kv/put", entry.data);
    m_.puts->Increment();
    blob = entry;
    // The delivery ticket is issued with the version, under the same lock:
    // ticket order == version order for this shard's keys.
    ticket = s.next_ticket++;
  }
  std::vector<std::shared_ptr<ListenerEntry>> to_notify;
  {
    std::lock_guard<std::mutex> lock(listeners_mu_);
    to_notify.reserve(listeners_.size());
    for (const auto& [id, listener] : listeners_) {
      listener->in_flight += 1;  // pins the entry for Unsubscribe's drain
      to_notify.push_back(listener);
    }
  }
  // Deliver outside every store lock, but in ticket order: a listener sees
  // each key's versions in assignment order even under concurrent Puts.
  {
    std::unique_lock<std::mutex> nl(s.notify_mu);
    s.notify_cv.wait(nl, [&] { return s.serving_ticket == ticket; });
  }
  for (const auto& entry : to_notify) entry->fn(key, blob);
  {
    std::lock_guard<std::mutex> nl(s.notify_mu);
    s.serving_ticket += 1;
  }
  s.notify_cv.notify_all();
  if (!to_notify.empty()) {
    {
      std::lock_guard<std::mutex> lock(listeners_mu_);
      for (const auto& entry : to_notify) entry->in_flight -= 1;
    }
    listeners_drained_.notify_all();
  }
  return blob.version;
}

KvStore::GetResult KvStore::TryGet(const std::string& key) const {
  rc::obs::TraceSpan span("store/get");
  rc::obs::ScopedTimer timer(m_.get_latency_us);
  faults::InjectLatency("kv/get");
  MaybeSleep();
  if (faults::InjectError("kv/get")) {
    m_.gets_failed->Increment();
    return {GetStatus::kError, {}};
  }
  GetResult result;
  {
    Shard& s = ShardFor(key);
    std::lock_guard<std::mutex> lock(s.mu);
    if (!available_.load(std::memory_order_acquire)) {
      m_.gets_failed->Increment();
      return {GetStatus::kUnavailable, {}};
    }
    auto it = s.blobs.find(key);
    if (it == s.blobs.end()) {
      m_.gets_notfound->Increment();
      return {GetStatus::kNotFound, {}};
    }
    result.status = GetStatus::kOk;
    result.blob = it->second;
  }
  m_.gets_ok->Increment();
  // Corrupt-on-read injection mutates only this caller's copy; the stored
  // blob (and its CRC) stay intact, so the next read may succeed.
  faults::InjectMutation("kv/get", result.blob.data);
  return result;
}

std::optional<VersionedBlob> KvStore::Get(const std::string& key) const {
  GetResult result = TryGet(key);
  if (!result.ok()) return std::nullopt;
  return std::move(result.blob);
}

std::optional<uint64_t> KvStore::GetVersion(const std::string& key) const {
  if (!available_.load(std::memory_order_acquire)) return std::nullopt;
  Shard& s = ShardFor(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.blobs.find(key);
  if (it == s.blobs.end()) return std::nullopt;
  return it->second.version;
}

std::vector<std::string> KvStore::ListKeys(const std::string& prefix) const {
  std::vector<std::string> keys;
  if (!available_.load(std::memory_order_acquire)) return keys;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    for (const auto& [key, blob] : s.blobs) {
      if (key.compare(0, prefix.size(), prefix) == 0) keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

void KvStore::SetAvailable(bool available) {
  available_.store(available, std::memory_order_release);
}

bool KvStore::available() const {
  return available_.load(std::memory_order_acquire);
}

int KvStore::Subscribe(Listener listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  int id = next_listener_id_++;
  auto entry = std::make_shared<ListenerEntry>();
  entry->fn = std::move(listener);
  listeners_[id] = std::move(entry);
  return id;
}

void KvStore::Unsubscribe(int id) {
  std::unique_lock<std::mutex> lock(listeners_mu_);
  auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  std::shared_ptr<ListenerEntry> entry = it->second;
  listeners_.erase(it);
  // No new Put can reach the listener now; wait out invocations that copied
  // the entry before we erased it. After this returns the caller may safely
  // destroy anything the listener captured.
  listeners_drained_.wait(lock, [&] { return entry->in_flight == 0; });
}

size_t KvStore::key_count() const {
  size_t total = 0;
  for (size_t i = 0; i <= shard_mask_; ++i) {
    Shard& s = shards_[i];
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.blobs.size();
  }
  return total;
}

}  // namespace rc::store
