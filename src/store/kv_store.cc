#include "src/store/kv_store.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "src/common/crc32.h"
#include "src/common/faults.h"
#include "src/obs/trace_events.h"

namespace rc::store {

bool VerifyBlob(const VersionedBlob& blob) { return Crc32(blob.data) == blob.crc; }

double LatencyProfile::SampleUs(Rng& rng) const {
  // Lognormal with the requested median; sigma solved from the P99 ratio
  // (z_0.99 = 2.326).
  double mu = std::log(median_us);
  double sigma = std::log(p99_us / median_us) / 2.326;
  return rng.LogNormal(mu, sigma);
}

KvStore::KvStore(Options options) : options_(options), latency_rng_(options.latency_seed) {
  rc::obs::MetricsRegistry& reg = options_.metrics != nullptr
                                      ? *options_.metrics
                                      : rc::obs::MetricsRegistry::Global();
  m_.puts = &reg.GetCounter("rc_store_puts", {}, "successful writes");
  m_.puts_dropped =
      &reg.GetCounter("rc_store_puts_dropped", {}, "writes lost to outage or error");
  m_.gets_ok = &reg.GetCounter("rc_store_gets", {{"status", "ok"}}, "reads by outcome");
  m_.gets_notfound = &reg.GetCounter("rc_store_gets", {{"status", "notfound"}});
  m_.gets_failed = &reg.GetCounter("rc_store_gets", {{"status", "failed"}});
  m_.keys = &reg.GetGauge("rc_store_keys", {}, "distinct keys stored");
  m_.get_latency_us = &reg.GetHistogram("rc_store_get_latency_us", {}, {},
                                        "TryGet latency incl. simulated profile (us)");
}

void KvStore::MaybeSleep() const {
  if (!options_.simulate_latency) return;
  double us;
  {
    // latency_rng_ is guarded by mu_; callers sample under the lock and
    // sleep outside it.
    std::lock_guard<std::mutex> lock(mu_);
    us = options_.latency.SampleUs(latency_rng_);
  }
  std::this_thread::sleep_for(std::chrono::microseconds(static_cast<int64_t>(us)));
}

uint64_t KvStore::Put(const std::string& key, std::vector<uint8_t> data) {
  rc::obs::TraceSpan span("store/put");
  faults::InjectLatency("kv/put");
  MaybeSleep();
  if (faults::InjectError("kv/put")) {  // injected I/O error: write lost
    m_.puts_dropped->Increment();
    return 0;
  }
  VersionedBlob blob;
  std::vector<std::shared_ptr<ListenerEntry>> to_notify;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) {  // outage: drop the write, notify nobody
      m_.puts_dropped->Increment();
      return 0;
    }
    VersionedBlob& entry = blobs_[key];
    entry.version += 1;
    entry.data = std::move(data);
    entry.crc = Crc32(entry.data);
    // Corrupt-at-rest / torn-write injection happens after the CRC stamp, so
    // readers see a blob whose checksum no longer matches its payload —
    // exactly what a real partial or bit-flipped write looks like.
    faults::InjectMutation("kv/put", entry.data);
    m_.puts->Increment();
    m_.keys->Set(static_cast<double>(blobs_.size()));
    blob = entry;
    to_notify.reserve(listeners_.size());
    for (const auto& [id, listener] : listeners_) {
      listener->in_flight += 1;  // pins the entry for Unsubscribe's drain
      to_notify.push_back(listener);
    }
  }
  for (const auto& entry : to_notify) entry->fn(key, blob);
  if (!to_notify.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& entry : to_notify) entry->in_flight -= 1;
    }
    listeners_drained_.notify_all();
  }
  return blob.version;
}

KvStore::GetResult KvStore::TryGet(const std::string& key) const {
  rc::obs::TraceSpan span("store/get");
  rc::obs::ScopedTimer timer(m_.get_latency_us);
  faults::InjectLatency("kv/get");
  MaybeSleep();
  if (faults::InjectError("kv/get")) {
    m_.gets_failed->Increment();
    return {GetStatus::kError, {}};
  }
  GetResult result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) {
      m_.gets_failed->Increment();
      return {GetStatus::kUnavailable, {}};
    }
    auto it = blobs_.find(key);
    if (it == blobs_.end()) {
      m_.gets_notfound->Increment();
      return {GetStatus::kNotFound, {}};
    }
    result.status = GetStatus::kOk;
    result.blob = it->second;
  }
  m_.gets_ok->Increment();
  // Corrupt-on-read injection mutates only this caller's copy; the stored
  // blob (and its CRC) stay intact, so the next read may succeed.
  faults::InjectMutation("kv/get", result.blob.data);
  return result;
}

std::optional<VersionedBlob> KvStore::Get(const std::string& key) const {
  GetResult result = TryGet(key);
  if (!result.ok()) return std::nullopt;
  return std::move(result.blob);
}

std::optional<uint64_t> KvStore::GetVersion(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!available_) return std::nullopt;
  auto it = blobs_.find(key);
  if (it == blobs_.end()) return std::nullopt;
  return it->second.version;
}

std::vector<std::string> KvStore::ListKeys(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> keys;
  if (!available_) return keys;
  for (const auto& [key, blob] : blobs_) {
    if (key.compare(0, prefix.size(), prefix) == 0) keys.push_back(key);
  }
  return keys;
}

void KvStore::SetAvailable(bool available) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ = available;
}

bool KvStore::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

int KvStore::Subscribe(Listener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  int id = next_listener_id_++;
  auto entry = std::make_shared<ListenerEntry>();
  entry->fn = std::move(listener);
  listeners_[id] = std::move(entry);
  return id;
}

void KvStore::Unsubscribe(int id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = listeners_.find(id);
  if (it == listeners_.end()) return;
  std::shared_ptr<ListenerEntry> entry = it->second;
  listeners_.erase(it);
  // No new Put can reach the listener now; wait out invocations that copied
  // the entry before we erased it. After this returns the caller may safely
  // destroy anything the listener captured.
  listeners_drained_.wait(lock, [&] { return entry->in_flight == 0; });
}

size_t KvStore::key_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return blobs_.size();
}

}  // namespace rc::store
