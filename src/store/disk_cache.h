// Local-filesystem cache of models and feature data (paper Section 4.2):
// the client DLL persists its in-memory caches to disk and consults the disk
// copy only when (a) there is an in-memory miss and the store is unavailable
// or (b) the client restarts while the store is unavailable — and never when
// the disk entry has expired.
#ifndef RC_SRC_STORE_DISK_CACHE_H_
#define RC_SRC_STORE_DISK_CACHE_H_

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "src/store/kv_store.h"

namespace rc::store {

class DiskCache {
 public:
  // Entries older than `expiry_seconds` are ignored (and lazily removed).
  // The directory is created if needed. `metrics` receives the rc_disk_*
  // instruments (null = the process-global registry).
  DiskCache(std::filesystem::path dir, int64_t expiry_seconds,
            rc::obs::MetricsRegistry* metrics = nullptr);

  // Persists a blob under the (sanitized) key, stamped with `now_unix`
  // (defaults to wall-clock when < 0).
  void Put(const std::string& key, const VersionedBlob& blob, int64_t now_unix = -1);

  // Reads a blob back; nullopt if absent, expired relative to `now_unix`, or
  // corrupt — a bad magic, a frame shorter or longer than its length field
  // (torn write), or a payload CRC mismatch (bit rot) all reject the entry.
  std::optional<VersionedBlob> Get(const std::string& key, int64_t now_unix = -1) const;

  void Remove(const std::string& key);
  void Clear();

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path PathFor(const std::string& key) const;

  struct Instruments {
    rc::obs::Counter* writes;
    rc::obs::Counter* reads_hit;
    rc::obs::Counter* reads_miss;
    rc::obs::Counter* reads_expired;
    rc::obs::Counter* reads_corrupt;  // bad magic / torn frame / CRC mismatch
  };

  std::filesystem::path dir_;
  int64_t expiry_seconds_;
  Instruments m_{};
};

}  // namespace rc::store

#endif  // RC_SRC_STORE_DISK_CACHE_H_
