// rc::obs — structured trace events: scoped spans with nanosecond
// timestamps, written to bounded per-thread ring buffers and drainable as
// JSON (Chrome trace-event format, loadable in chrome://tracing / Perfetto).
//
// Cost model: tracing is DISABLED by default. A TraceSpan on a disabled log
// costs one relaxed atomic load; when enabled, finishing a span takes the
// owning thread's (uncontended) ring mutex to append one fixed-size event.
// Span names must be string literals (or otherwise outlive the log): events
// store the pointer, never a copy, so the armed path does not allocate.
//
// Instrumented paths (grep for the names):
//   prediction:  client/predict  client/result_cache  client/featurize
//                client/execute
//   store path:  client/store_read  client/crc_verify  client/decode
//                client/publish_state  store/get  store/put  disk/read
//                disk/write  pipeline/publish
#ifndef RC_SRC_OBS_TRACE_EVENTS_H_
#define RC_SRC_OBS_TRACE_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rc::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string; not owned
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  // small sequential id of the recording thread
};

// Process-wide trace log. Per-thread rings are created on a thread's first
// armed span and live for the process lifetime, so Drain() observes events
// from threads that have already exited.
class TraceLog {
 public:
  static TraceLog& Global();

  // Arms tracing. Rings hold the most recent `ring_capacity` events per
  // thread (older events are overwritten).
  void Enable(size_t ring_capacity = 4096);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Append(const char* name, uint64_t start_ns, uint64_t duration_ns);

  // Removes and returns all buffered events, oldest-first per thread.
  std::vector<TraceEvent> Drain();
  // Drains into a Chrome trace-event JSON array ("X" complete events,
  // timestamps in microseconds).
  std::string DrainJson();

 private:
  TraceLog() = default;

  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> events;  // capacity-bounded circular buffer
    size_t next = 0;
    bool wrapped = false;
    uint32_t tid = 0;
  };

  Ring& LocalRing();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> capacity_{4096};
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  uint32_t next_tid_ = 1;
};

// RAII span: captures the start time at construction and appends one event
// at destruction. Disabled logs make both ends near-free.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), armed_(TraceLog::Global().enabled()) {
    if (armed_) start_ns_ = Now();
  }
  ~TraceSpan() {
    if (armed_) TraceLog::Global().Append(name_, start_ns_, Now() - start_ns_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static uint64_t Now();

  const char* name_;
  bool armed_;
  uint64_t start_ns_ = 0;
};

}  // namespace rc::obs

#endif  // RC_SRC_OBS_TRACE_EVENTS_H_
