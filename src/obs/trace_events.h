// rc::obs — structured trace events: scoped spans with nanosecond
// timestamps, written to bounded per-thread ring buffers and drainable as
// JSON (Chrome trace-event format, loadable in chrome://tracing / Perfetto).
//
// Cost model: tracing is DISABLED by default. A TraceSpan on a disabled log
// with no sampled trace context costs one relaxed atomic load plus one
// thread-local read; when enabled, finishing a span takes the owning
// thread's (uncontended) ring mutex to append one fixed-size event.
// Span names must be string literals (or otherwise outlive the log): events
// store the pointer, never a copy, so the armed path does not allocate.
//
// Two consumers, one instrumentation point: when the thread carries a
// sampled TraceContext (trace_context.h), every TraceSpan additionally
// pushes itself onto the thread's context stack — nested spans become a
// parent-linked tree recorded in TraceStore for /tracez, and the same ids
// annotate the Chrome events.
//
// Instrumented paths (grep for the names):
//   prediction:  client/predict  client/result_cache  client/featurize
//                client/execute  client/exec_batch
//   combiner:    combiner/predict  combiner/park  combiner/dispatch
//                combiner/coalesced
//   network:     netclient/call  net/read_frame  net/predict
//                net/write_frame
//   store path:  client/store_read  client/crc_verify  client/decode
//                client/publish_state  store/get  store/put  disk/read
//                disk/write  pipeline/publish
#ifndef RC_SRC_OBS_TRACE_EVENTS_H_
#define RC_SRC_OBS_TRACE_EVENTS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace_context.h"

namespace rc::obs {

struct TraceEvent {
  const char* name = nullptr;  // static string; not owned
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;  // small sequential id of the recording thread
  // Trace-tree identity; zero when the event was recorded outside any
  // sampled trace.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

// Process-wide trace log. Per-thread rings are created on a thread's first
// armed span and live for the process lifetime, so Drain() observes events
// from threads that have already exited.
class TraceLog {
 public:
  static TraceLog& Global();

  // Arms tracing. Rings hold the most recent `ring_capacity` events per
  // thread (older events are overwritten).
  void Enable(size_t ring_capacity = 4096);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void Append(const char* name, uint64_t start_ns, uint64_t duration_ns,
              uint64_t trace_id = 0, uint64_t span_id = 0,
              uint64_t parent_span_id = 0);

  // Removes and returns all buffered events, oldest-first per thread.
  std::vector<TraceEvent> Drain();
  // Drains into a Chrome trace-event JSON array ("X" complete events,
  // timestamps in microseconds; trace/span ids rendered as args).
  std::string DrainJson();

 private:
  TraceLog() = default;

  struct Ring {
    std::mutex mu;
    std::vector<TraceEvent> events;  // capacity-bounded circular buffer
    size_t next = 0;
    bool wrapped = false;
    uint32_t tid = 0;
  };

  Ring& LocalRing();

  std::atomic<bool> enabled_{false};
  std::atomic<size_t> capacity_{4096};
  std::mutex registry_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;
  uint32_t next_tid_ = 1;
};

// RAII span: captures the start time at construction and appends one event
// at destruction. Disabled logs with no sampled context make both ends
// near-free. When the thread's current TraceContext is sampled, the span
// allocates its own span id, becomes the thread's current context for its
// lifetime (children parent to it), and records to TraceStore on finish.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name) {
    chrome_ = TraceLog::Global().enabled();
    const TraceContext cur = internal::t_current;
    if (cur.valid()) {
      StartTraced(cur);
    } else if (chrome_) {
      start_ns_ = Now();
    }
  }

  // Starts the span under an explicit parent context instead of the
  // thread's current one: root spans (ctx from Tracer::StartTrace(), which
  // carries span_id 0 so this span becomes the parentless root) and spans
  // continuing a wire context.
  TraceSpan(const char* name, const TraceContext& ctx) : name_(name) {
    chrome_ = TraceLog::Global().enabled();
    if (ctx.valid()) {
      StartTraced(ctx);
    } else if (chrome_) {
      start_ns_ = Now();
    }
  }

  ~TraceSpan() {
    if (chrome_ || traced_) Finish();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  // Attaches a follows-from edge (rendered on /tracez); the combiner links
  // a parked caller's span to the batch dispatch that served it.
  void SetLink(uint64_t link_trace_id, uint64_t link_span_id) {
    link_trace_id_ = link_trace_id;
    link_span_id_ = link_span_id;
  }

  // This span's context, for handing to another thread or the wire.
  TraceContext context() const {
    if (!traced_) return {};
    return TraceContext{trace_id_, span_id_, true};
  }

 private:
  static uint64_t Now();
  void StartTraced(const TraceContext& parent);
  void Finish();

  const char* name_;
  bool chrome_ = false;
  bool traced_ = false;
  uint64_t start_ns_ = 0;
  uint64_t trace_id_ = 0;
  uint64_t span_id_ = 0;
  uint64_t parent_span_id_ = 0;
  uint64_t link_trace_id_ = 0;
  uint64_t link_span_id_ = 0;
  TraceContext prev_;
};

}  // namespace rc::obs

#endif  // RC_SRC_OBS_TRACE_EVENTS_H_
