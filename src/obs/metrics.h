// rc::obs — process-wide observability: named counters, gauges, and
// lock-free fixed-bucket latency histograms behind a MetricsRegistry.
//
// Design goals (DESIGN.md "Observability"):
//  * The prediction hot path must stay contention-free: every instrument
//    write is a relaxed atomic operation on a cache-line-aligned per-thread
//    shard — no mutex, no CAS retry loop on the counter path, no allocation.
//  * Instrument lookup is cold: callers resolve `Counter*` / `Histogram*`
//    once (registry get-or-create under a mutex) and hold the pointer; the
//    registry never invalidates instrument pointers.
//  * Snapshots are wait-free for writers: readers sum the shards with
//    relaxed loads, so a snapshot taken during a write storm is approximate
//    in the usual Prometheus sense (each shard value is atomically read, the
//    sum may be mid-update) but never torn per shard and never blocks.
//
// Naming scheme: `rc_<component>_<what>[_<unit>]`, labels rendered
// Prometheus-style (`rc_sched_rule_rejections{rule="strict-fit"}`).
// Latency histograms use microseconds and the `_us` suffix.
#ifndef RC_SRC_OBS_METRICS_H_
#define RC_SRC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace rc::obs {

// Monotonic nanosecond clock used by all span/latency instrumentation.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Shard index for the calling thread, assigned round-robin on first use so
// concurrent writers land on different cache lines. Shared by all sharded
// instruments (the pinning only needs to spread threads, not isolate them).
inline constexpr size_t kShards = 16;  // power of two
size_t ThreadShard();

// Monotonic counter. Increment is one relaxed fetch_add on the caller's
// shard; Value() sums the shards.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    shards_[ThreadShard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& s : shards_) total += s.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
};

// Last-write-wins double gauge. Set/Value are single relaxed operations;
// Add is a relaxed fetch_add (C++20 atomic<double>).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Log-spaced bucket layout: finite bucket i covers (bound[i-1], bound[i]]
// with bound[i] = min * 10^(i / buckets_per_decade); one overflow bucket
// catches values above `max`. Values at or below `min` (including negatives)
// land in bucket 0. Quantiles report the upper bound of the bucket holding
// the rank, so they overestimate by at most one bucket width (a factor of
// 10^(1/buckets_per_decade), 1.33x at the default 8 buckets per decade).
struct HistogramOptions {
  double min = 0.1;  // upper bound of the first bucket (0.1us default)
  double max = 1e7;  // values above this land in the overflow bucket (10s)
  int buckets_per_decade = 8;
  // Sliding-window view (TakeWindowSnapshot): the most recent
  // `window_epochs` epochs of `window_epoch_ns` each — defaults cover the
  // last minute. 0 epochs disables the window and its memory.
  int window_epochs = 6;
  uint64_t window_epoch_ns = 10'000'000'000ull;  // 10 s
};

// Fixed-bucket histogram with per-thread shards. Record() is two relaxed
// atomic adds (bucket count + shard sum) plus a log10 for the bucket index;
// no locks anywhere, so it is safe on the prediction hot path.
//
// The optional sliding window is a ring of epoch-tagged shard sets: a
// recording thread whose epoch does not match its slot's tag claims the
// slot with one CAS and zeroes it, so the ring rotates without any clock
// thread. Lifetime shards are untouched by rotation — lifetime counts stay
// monotone no matter what the window does. Claim races lose at most the
// handful of window-only samples in flight during a rotation (never
// lifetime samples); snapshots sum only slots whose tag falls inside the
// window, so stale epochs are invisible rather than zeroed lazily.
class Histogram {
 public:
  explicit Histogram(const HistogramOptions& options = {});

  void Record(double value) { RecordAt(value, NowNs()); }
  // Same, with an injected timestamp for the window epoch (tests virtualize
  // time; the lifetime shards don't care).
  void RecordAt(double value, uint64_t now_ns);

  // Upper bounds of the finite buckets (the overflow bucket is implicit).
  const std::vector<double>& bounds() const { return bounds_; }

  bool has_window() const { return !window_.empty(); }
  uint64_t window_span_ns() const {
    return static_cast<uint64_t>(window_epochs_) * epoch_ns_;
  }

  struct Snapshot {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<double> bounds;         // finite bucket upper bounds
    std::vector<uint64_t> buckets;      // size bounds.size() + 1 (overflow last)

    double Mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }
    // q in [0, 1]; returns the upper bound of the bucket containing the
    // ceil(q * count)-th smallest sample (overflow reports the top bound).
    double Quantile(double q) const;
  };
  Snapshot TakeSnapshot() const;
  // Sums the ring slots whose epoch is within the window ending at
  // `now_ns`. Empty (all-zero) snapshot when the window is disabled.
  Snapshot TakeWindowSnapshot(uint64_t now_ns) const;

 private:
  static constexpr uint64_t kEmptyEpoch = ~0ull;

  size_t BucketIndex(double value) const;
  void WindowRecord(size_t bucket, double value, uint64_t now_ns);

  std::vector<double> bounds_;
  double min_;
  double buckets_per_log10_;

  struct alignas(64) Shard {
    std::atomic<double> sum{0.0};
    std::atomic<uint64_t> count{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds + overflow
  };
  std::array<Shard, kShards> shards_;

  struct WindowSlot {
    std::atomic<uint64_t> epoch{kEmptyEpoch};
    std::array<Shard, kShards> shards;
  };
  std::vector<std::unique_ptr<WindowSlot>> window_;  // ring; empty = disabled
  int window_epochs_ = 0;
  uint64_t epoch_ns_ = 1;
};

// Sorted label set rendered Prometheus-style. Keys are sorted (and
// duplicates rejected by last-wins) at registration time so the same label
// set always maps to the same instrument and the same exposition text.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Identity + metadata shared by all samples of one instrument.
struct MetricInfo {
  std::string name;
  std::string labels;  // rendered `k="v",k2="v2"`; empty when unlabeled
  std::string help;

  // `name{labels}` — the registry key and the exposition series name.
  std::string Key() const {
    return labels.empty() ? name : name + "{" + labels + "}";
  }
};

struct CounterSample {
  MetricInfo info;
  uint64_t value = 0;
};
struct GaugeSample {
  MetricInfo info;
  double value = 0.0;
};
struct HistogramSample {
  MetricInfo info;
  Histogram::Snapshot hist;    // lifetime, monotone
  Histogram::Snapshot window;  // sliding window ending at collection time
  bool has_window = false;
};

// A consistent-enough view of a registry for export: every sample is read
// with relaxed loads while writers keep writing. Sorted by (name, labels).
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

// Named instruments, get-or-create. Instrument pointers are stable for the
// registry's lifetime; resolve once and hold the pointer. Asking for an
// existing name with a different instrument type throws std::logic_error.
// `Global()` is the process-wide registry; components default to it but
// accept an injected registry so tests can assert in isolation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name, Labels labels = {},
                      std::string_view help = "");
  Gauge& GetGauge(std::string_view name, Labels labels = {},
                  std::string_view help = "");
  // Options apply on first registration only (later calls return the
  // existing instrument unchanged).
  Histogram& GetHistogram(std::string_view name, const HistogramOptions& options = {},
                          Labels labels = {}, std::string_view help = "");

  RegistrySnapshot Collect() const;

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    MetricInfo info;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& GetOrCreate(std::string_view name, Labels&& labels, std::string_view help,
                     Kind kind, const HistogramOptions* options);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;  // keyed by MetricInfo::Key()
};

// Convenience: times a scope into a histogram (microseconds). `histogram`
// may be null, making the timer a no-op.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram)
      : histogram_(histogram), start_ns_(histogram != nullptr ? NowNs() : 0) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<double>(NowNs() - start_ns_) / 1000.0);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* histogram_;
  uint64_t start_ns_;
};

}  // namespace rc::obs

#endif  // RC_SRC_OBS_METRICS_H_
