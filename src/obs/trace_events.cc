#include "src/obs/trace_events.h"

#include <algorithm>

#include "src/obs/metrics.h"

namespace rc::obs {

TraceLog& TraceLog::Global() {
  static TraceLog* log = new TraceLog();
  return *log;
}

uint64_t TraceSpan::Now() { return NowNs(); }

void TraceSpan::StartTraced(const TraceContext& parent) {
  traced_ = true;
  trace_id_ = parent.trace_id;
  parent_span_id_ = parent.span_id;
  span_id_ = Tracer::NextSpanId();
  prev_ = internal::t_current;
  internal::t_current = TraceContext{trace_id_, span_id_, true};
  start_ns_ = Now();
}

void TraceSpan::Finish() {
  const uint64_t end_ns = Now();
  const uint64_t duration_ns = end_ns - start_ns_;
  if (traced_) {
    internal::t_current = prev_;
    SpanRecord rec;
    rec.name = name_;
    rec.trace_id = trace_id_;
    rec.span_id = span_id_;
    rec.parent_span_id = parent_span_id_;
    rec.start_ns = start_ns_;
    rec.duration_ns = duration_ns;
    rec.tid = internal::ThreadTraceTid();
    rec.link_trace_id = link_trace_id_;
    rec.link_span_id = link_span_id_;
    TraceStore::Global().Record(rec);
    // A parentless span is the trace root: its end is the trace's end.
    if (parent_span_id_ == 0) {
      TraceStore::Global().FinishTrace(trace_id_, duration_ns);
    }
  }
  if (chrome_) {
    TraceLog::Global().Append(name_, start_ns_, duration_ns, trace_id_, span_id_,
                              parent_span_id_);
  }
}

void TraceLog::Enable(size_t ring_capacity) {
  capacity_.store(std::max<size_t>(1, ring_capacity), std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceLog::Disable() { enabled_.store(false, std::memory_order_relaxed); }

TraceLog::Ring& TraceLog::LocalRing() {
  // The shared_ptr keeps the ring alive past thread exit (Drain may run
  // later); the raw pointer cache keeps the armed path to one TLS read.
  thread_local std::shared_ptr<Ring> ring = [this] {
    auto r = std::make_shared<Ring>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    r->tid = next_tid_++;
    rings_.push_back(r);
    return r;
  }();
  return *ring;
}

void TraceLog::Append(const char* name, uint64_t start_ns, uint64_t duration_ns,
                      uint64_t trace_id, uint64_t span_id, uint64_t parent_span_id) {
  Ring& ring = LocalRing();
  size_t capacity = capacity_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(ring.mu);
  TraceEvent event{name, start_ns, duration_ns, ring.tid, trace_id, span_id,
                   parent_span_id};
  if (ring.events.size() < capacity) {
    ring.events.push_back(event);
    ring.next = ring.events.size() % capacity;
  } else {
    if (ring.events.size() > capacity) {  // capacity shrank since last enable
      ring.events.resize(capacity);
      ring.next = 0;
    }
    ring.events[ring.next] = event;
    ring.next = (ring.next + 1) % capacity;
    ring.wrapped = true;
  }
}

std::vector<TraceEvent> TraceLog::Drain() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mu);
    if (ring->wrapped) {
      out.insert(out.end(), ring->events.begin() + static_cast<ptrdiff_t>(ring->next),
                 ring->events.end());
      out.insert(out.end(), ring->events.begin(),
                 ring->events.begin() + static_cast<ptrdiff_t>(ring->next));
    } else {
      out.insert(out.end(), ring->events.begin(), ring->events.end());
    }
    ring->events.clear();
    ring->next = 0;
    ring->wrapped = false;
  }
  return out;
}

std::string TraceLog::DrainJson() {
  std::vector<TraceEvent> events = Drain();
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::string out = "[";
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    if (i > 0) out += ",";
    out += "\n{\"name\":\"";
    out += e.name;
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(e.tid);
    out += ",\"ts\":" + std::to_string(e.start_ns / 1000) + "." +
           std::to_string((e.start_ns % 1000) / 100);
    out += ",\"dur\":" + std::to_string(e.duration_ns / 1000) + "." +
           std::to_string((e.duration_ns % 1000) / 100);
    if (e.trace_id != 0) {
      out += ",\"args\":{\"trace_id\":" + std::to_string(e.trace_id) +
             ",\"span_id\":" + std::to_string(e.span_id) +
             ",\"parent_span_id\":" + std::to_string(e.parent_span_id) + "}";
    }
    out += "}";
  }
  out += "\n]\n";
  return out;
}

}  // namespace rc::obs
