#include "src/obs/trace_context.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "src/obs/trace_events.h"

namespace rc::obs {

namespace internal {

uint32_t ThreadTraceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace internal

// Ids are (pid << 32) | sequence so the two ends of a loopback connection —
// or a client fleet hitting one server — mint non-colliding span ids within
// a shared trace without any coordination.
namespace {
uint64_t PidSalt() {
  static const uint64_t salt = static_cast<uint64_t>(::getpid()) << 32;
  return salt;
}
}  // namespace

Tracer::Tracer() : next_trace_(PidSalt() + 1) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

TraceContext Tracer::StartTrace() {
  uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return {};
  uint64_t n = request_counter_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return {};
  TraceContext ctx;
  ctx.trace_id = next_trace_.fetch_add(1, std::memory_order_relaxed);
  ctx.span_id = 0;  // the root span has no parent
  ctx.sampled = true;
  return ctx;
}

uint64_t Tracer::NextSpanId() {
  static std::atomic<uint64_t> next{PidSalt() + 1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

uint64_t RecordSpanUnder(const char* name, const TraceContext& parent,
                         uint64_t start_ns, uint64_t duration_ns,
                         uint64_t link_trace_id, uint64_t link_span_id) {
  const bool chrome = TraceLog::Global().enabled();
  if (!parent.valid() && !chrome) return 0;
  uint64_t span_id = Tracer::NextSpanId();
  if (parent.valid()) {
    SpanRecord rec;
    rec.name = name;
    rec.trace_id = parent.trace_id;
    rec.span_id = span_id;
    rec.parent_span_id = parent.span_id;
    rec.start_ns = start_ns;
    rec.duration_ns = duration_ns;
    rec.tid = internal::ThreadTraceTid();
    rec.link_trace_id = link_trace_id;
    rec.link_span_id = link_span_id;
    TraceStore::Global().Record(rec);
  }
  if (chrome) {
    TraceLog::Global().Append(name, start_ns, duration_ns, parent.trace_id, span_id,
                              parent.span_id);
  }
  return span_id;
}

TraceStore::TraceStore()
    : bucket_bounds_us_{100.0, 1'000.0, 10'000.0, 100'000.0},
      buckets_(bucket_bounds_us_.size() + 1) {
  for (Bucket& b : buckets_) b.trace_ids.reserve(options_.traces_per_bucket);
}

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();
  return *store;
}

void TraceStore::Configure(const Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  options_ = options;
  options_.max_active_traces = std::max<size_t>(options_.max_active_traces, 1);
  options_.max_spans_per_trace = std::max<size_t>(options_.max_spans_per_trace, 1);
  options_.traces_per_bucket = std::max<size_t>(options_.traces_per_bucket, 1);
}

uint64_t TraceStore::NextRandomLocked() {
  rng_ = rng_ * 6364136223846793005ull + 1442695040888963407ull;
  return rng_ >> 16;
}

void TraceStore::EvictLocked() {
  // One pass over the FIFO at most: retained entries are pinned (bounded by
  // buckets * K, far below the map cap) and get re-queued behind the rest.
  size_t scans = arrival_order_.size();
  while (traces_.size() > options_.max_active_traces && scans-- > 0) {
    uint64_t oldest = arrival_order_.front();
    arrival_order_.pop_front();
    auto it = traces_.find(oldest);
    if (it == traces_.end()) continue;  // stale id from an earlier erase
    if (it->second.state == State::kRetained) {
      arrival_order_.push_back(oldest);
      continue;
    }
    traces_.erase(it);
  }
}

void TraceStore::Record(const SpanRecord& rec) {
  if (rec.trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(rec.trace_id);
  if (it == traces_.end()) {
    it = traces_.emplace(rec.trace_id, TraceEntry{}).first;
    arrival_order_.push_back(rec.trace_id);
    EvictLocked();
    // The new entry itself may have been evicted on a full map of pinned
    // traces; re-find rather than trust the iterator.
    it = traces_.find(rec.trace_id);
    if (it == traces_.end()) return;
  }
  TraceEntry& entry = it->second;
  if (entry.state == State::kDropped) return;  // tombstone: reservoir said no
  if (entry.spans.size() >= options_.max_spans_per_trace) return;
  entry.spans.push_back(rec);
}

void TraceStore::FinishTrace(uint64_t trace_id, uint64_t root_duration_ns) {
  if (trace_id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = traces_.find(trace_id);
  if (it == traces_.end() || it->second.state != State::kActive) return;
  ++finished_;
  const double us = static_cast<double>(root_duration_ns) / 1000.0;
  size_t b = 0;
  while (b < bucket_bounds_us_.size() && us > bucket_bounds_us_[b]) ++b;
  Bucket& bucket = buckets_[b];
  ++bucket.seen;

  size_t keep_slot = bucket.trace_ids.size();
  if (bucket.trace_ids.size() >= options_.traces_per_bucket) {
    uint64_t j = NextRandomLocked() % bucket.seen;
    if (j >= options_.traces_per_bucket) {
      // Lost the reservoir draw: drop the spans, keep a tombstone.
      it->second.state = State::kDropped;
      it->second.spans.clear();
      it->second.spans.shrink_to_fit();
      return;
    }
    keep_slot = static_cast<size_t>(j);
    auto displaced = traces_.find(bucket.trace_ids[keep_slot]);
    if (displaced != traces_.end()) {
      displaced->second.state = State::kDropped;
      displaced->second.spans.clear();
      displaced->second.spans.shrink_to_fit();
    }
  }
  it->second.state = State::kRetained;
  it->second.root_duration_ns = root_duration_ns;
  if (keep_slot < bucket.trace_ids.size()) {
    bucket.trace_ids[keep_slot] = trace_id;
  } else {
    bucket.trace_ids.push_back(trace_id);
  }
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  traces_.clear();
  arrival_order_.clear();
  for (Bucket& b : buckets_) {
    b.seen = 0;
    b.trace_ids.clear();
  }
  finished_ = 0;
}

uint64_t TraceStore::finished_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return finished_;
}

namespace {

std::string HexId(uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(id));
  return buf;
}

std::string FmtUs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(ns) / 1000.0);
  return buf;
}

}  // namespace

std::string TraceStore::TracezJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n\"sampled\":" + std::to_string(finished_);
  size_t active = 0;
  for (const auto& [id, entry] : traces_) {
    if (entry.state == State::kActive) ++active;
  }
  out += ",\"active\":" + std::to_string(active);
  out += ",\"buckets\":[";
  for (size_t b = 0; b < buckets_.size(); ++b) {
    if (b > 0) out += ",";
    out += "\n{\"le_us\":";
    if (b < bucket_bounds_us_.size()) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.0f", bucket_bounds_us_[b]);
      out += buf;
    } else {
      out += "\"+Inf\"";
    }
    out += ",\"seen\":" + std::to_string(buckets_[b].seen);
    out += ",\"traces\":[";
    bool first_trace = true;
    for (uint64_t id : buckets_[b].trace_ids) {
      auto it = traces_.find(id);
      if (it == traces_.end() || it->second.state != State::kRetained) continue;
      if (!first_trace) out += ",";
      first_trace = false;
      const TraceEntry& entry = it->second;
      out += "\n{\"trace_id\":\"" + HexId(id) + "\"";
      out += ",\"root_duration_us\":" + FmtUs(entry.root_duration_ns);
      out += ",\"spans\":[";
      std::vector<const SpanRecord*> spans;
      spans.reserve(entry.spans.size());
      for (const SpanRecord& s : entry.spans) spans.push_back(&s);
      std::stable_sort(spans.begin(), spans.end(),
                       [](const SpanRecord* a, const SpanRecord* b2) {
                         return a->start_ns < b2->start_ns;
                       });
      for (size_t s = 0; s < spans.size(); ++s) {
        const SpanRecord& rec = *spans[s];
        if (s > 0) out += ",";
        out += "\n{\"name\":\"";
        out += rec.name;
        out += "\",\"span_id\":\"" + HexId(rec.span_id) + "\"";
        out += ",\"parent_span_id\":\"" + HexId(rec.parent_span_id) + "\"";
        out += ",\"start_us\":" + FmtUs(rec.start_ns);
        out += ",\"dur_us\":" + FmtUs(rec.duration_ns);
        out += ",\"tid\":" + std::to_string(rec.tid);
        if (rec.link_span_id != 0) {
          out += ",\"link_trace_id\":\"" + HexId(rec.link_trace_id) + "\"";
          out += ",\"link_span_id\":\"" + HexId(rec.link_span_id) + "\"";
        }
        out += "}";
      }
      out += "]}";
    }
    out += "]}";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace rc::obs
