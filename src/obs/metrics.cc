#include "src/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rc::obs {

size_t ThreadShard() {
  static std::atomic<size_t> next{0};
  thread_local size_t shard = next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return shard;
}

Histogram::Histogram(const HistogramOptions& options) {
  min_ = std::max(options.min, 1e-12);
  double max = std::max(options.max, min_ * 1.0001);
  int per_decade = std::max(options.buckets_per_decade, 1);
  buckets_per_log10_ = static_cast<double>(per_decade);
  int finite = static_cast<int>(std::ceil(std::log10(max / min_) * per_decade)) + 1;
  bounds_.reserve(static_cast<size_t>(finite));
  for (int i = 0; i < finite; ++i) {
    bounds_.push_back(min_ * std::pow(10.0, static_cast<double>(i) / per_decade));
  }
  for (Shard& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  }
  if (options.window_epochs > 0) {
    window_epochs_ = options.window_epochs;
    epoch_ns_ = std::max<uint64_t>(options.window_epoch_ns, 1);
    // One spare slot beyond the window, so the slot recycled for the next
    // epoch is never one the current window still reads.
    window_.resize(static_cast<size_t>(window_epochs_) + 1);
    for (auto& slot : window_) {
      slot = std::make_unique<WindowSlot>();
      for (Shard& shard : slot->shards) {
        shard.buckets = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
      }
    }
  }
}

size_t Histogram::BucketIndex(double value) const {
  if (!(value > min_)) return 0;  // also catches NaN and negatives
  // ceil(log10(value/min) * per_decade): the first bound at or above value.
  double pos = std::log10(value / min_) * buckets_per_log10_;
  size_t index = static_cast<size_t>(std::ceil(pos - 1e-9));
  return std::min(index, bounds_.size());  // bounds_.size() == overflow
}

void Histogram::RecordAt(double value, uint64_t now_ns) {
  const size_t bucket = BucketIndex(value);
  Shard& shard = shards_[ThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  if (!window_.empty()) WindowRecord(bucket, value, now_ns);
}

void Histogram::WindowRecord(size_t bucket, double value, uint64_t now_ns) {
  const uint64_t epoch = now_ns / epoch_ns_;
  WindowSlot& slot = *window_[epoch % window_.size()];
  uint64_t tag = slot.epoch.load(std::memory_order_acquire);
  if (tag != epoch) {
    // A tag from a newer epoch means this sample is too old for the ring
    // (a laggard thread, or clock injection moving backwards in a test).
    if (tag != kEmptyEpoch && tag > epoch) return;
    if (slot.epoch.compare_exchange_strong(tag, epoch, std::memory_order_acq_rel)) {
      for (Shard& shard : slot.shards) {
        shard.sum.store(0.0, std::memory_order_relaxed);
        shard.count.store(0, std::memory_order_relaxed);
        for (size_t b = 0; b <= bounds_.size(); ++b) {
          shard.buckets[b].store(0, std::memory_order_relaxed);
        }
      }
    } else if (slot.epoch.load(std::memory_order_acquire) != epoch) {
      return;  // lost the claim to a different epoch; drop the window sample
    }
  }
  Shard& shard = slot.shards[ThreadShard()];
  shard.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::TakeSnapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  for (const Shard& shard : shards_) {
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    for (size_t b = 0; b <= bounds_.size(); ++b) {
      snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

Histogram::Snapshot Histogram::TakeWindowSnapshot(uint64_t now_ns) const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.buckets.assign(bounds_.size() + 1, 0);
  if (window_.empty()) return snap;
  const uint64_t cur = now_ns / epoch_ns_;
  for (const auto& slot : window_) {
    const uint64_t tag = slot->epoch.load(std::memory_order_acquire);
    if (tag == kEmptyEpoch || tag > cur ||
        cur - tag >= static_cast<uint64_t>(window_epochs_)) {
      continue;  // outside the window (stale slot awaiting reuse)
    }
    for (const Shard& shard : slot->shards) {
      snap.count += shard.count.load(std::memory_order_relaxed);
      snap.sum += shard.sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b <= bounds_.size(); ++b) {
        snap.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

double Histogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return b < bounds.size() ? bounds[b] : bounds.back();
    }
  }
  return bounds.empty() ? 0.0 : bounds.back();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {
std::string RenderLabels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
  std::string out;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + labels[i].second + "\"";
  }
  return out;
}
}  // namespace

MetricsRegistry::Entry& MetricsRegistry::GetOrCreate(std::string_view name,
                                                     Labels&& labels,
                                                     std::string_view help, Kind kind,
                                                     const HistogramOptions* options) {
  MetricInfo info;
  info.name = std::string(name);
  info.labels = RenderLabels(labels);
  info.help = std::string(help);
  std::string key = info.Key();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    if (it->second.kind != kind) {
      throw std::logic_error("metric '" + key + "' already registered with another type");
    }
    return it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.info = std::move(info);
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>(options != nullptr ? *options
                                                                       : HistogramOptions{});
      break;
  }
  return entries_.emplace(std::move(key), std::move(entry)).first->second;
}

Counter& MetricsRegistry::GetCounter(std::string_view name, Labels labels,
                                     std::string_view help) {
  return *GetOrCreate(name, std::move(labels), help, Kind::kCounter, nullptr).counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name, Labels labels,
                                 std::string_view help) {
  return *GetOrCreate(name, std::move(labels), help, Kind::kGauge, nullptr).gauge;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options, Labels labels,
                                         std::string_view help) {
  return *GetOrCreate(name, std::move(labels), help, Kind::kHistogram, &options).histogram;
}

RegistrySnapshot MetricsRegistry::Collect() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [key, entry] : entries_) {
    switch (entry.kind) {
      case Kind::kCounter:
        snap.counters.push_back({entry.info, entry.counter->Value()});
        break;
      case Kind::kGauge:
        snap.gauges.push_back({entry.info, entry.gauge->Value()});
        break;
      case Kind::kHistogram:
        snap.histograms.push_back({entry.info, entry.histogram->TakeSnapshot(),
                                   entry.histogram->TakeWindowSnapshot(NowNs()),
                                   entry.histogram->has_window()});
        break;
    }
  }
  return snap;
}

}  // namespace rc::obs
