#include "src/obs/process_metrics.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace rc::obs {

// The build facts are injected by src/obs/CMakeLists.txt; the fallbacks
// keep non-CMake compiles (tooling, IDEs) building.
#ifndef RC_VERSION
#define RC_VERSION "dev"
#endif
#ifndef RC_GIT_SHA
#define RC_GIT_SHA "unknown"
#endif
#ifndef RC_BUILD_TYPE
#define RC_BUILD_TYPE "unknown"
#endif

const char* BuildVersion() { return RC_VERSION; }
const char* BuildGitSha() { return RC_GIT_SHA; }
const char* BuildCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}
const char* BuildType() { return RC_BUILD_TYPE; }

void RegisterBuildInfo(MetricsRegistry& registry) {
  registry
      .GetGauge("rc_build_info",
                {{"version", BuildVersion()},
                 {"git_sha", BuildGitSha()},
                 {"compiler", BuildCompiler()},
                 {"build", BuildType()}},
                "build identity (constant 1; the labels are the payload)")
      .Set(1.0);
}

namespace {

// Process start, captured on first use. /proc/self/stat's starttime would
// survive exec, but a steady-clock anchor at first registration is enough
// for "how long has this server been up" and needs no jiffy arithmetic.
uint64_t ProcessStartNs() {
  static const uint64_t start_ns = NowNs();
  return start_ns;
}

double ReadRssBytes() {
  std::ifstream statm("/proc/self/statm");
  if (!statm) return -1.0;
  long long total_pages = 0, rss_pages = 0;
  if (!(statm >> total_pages >> rss_pages)) return -1.0;
  return static_cast<double>(rss_pages) *
         static_cast<double>(::sysconf(_SC_PAGESIZE));
}

double CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return -1.0;
  double count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  return count - 1;  // the opendir itself holds one fd
}

}  // namespace

void UpdateProcessGauges(MetricsRegistry& registry) {
  registry
      .GetGauge("rc_process_uptime_seconds", {},
                "seconds since process gauges were first registered")
      .Set(static_cast<double>(NowNs() - ProcessStartNs()) / 1e9);
  const double rss = ReadRssBytes();
  if (rss >= 0.0) {
    registry
        .GetGauge("rc_process_resident_memory_bytes", {},
                  "resident set size from /proc/self/statm")
        .Set(rss);
  }
  const double fds = CountOpenFds();
  if (fds >= 0.0) {
    registry.GetGauge("rc_process_open_fds", {}, "open file descriptors").Set(fds);
  }
}

}  // namespace rc::obs
