// rc::obs exporters: Prometheus-style text exposition, a JSON snapshot, and
// a periodic file dumper for long-running benches / the simulator.
//
// Both exporters render a RegistrySnapshot, so they can be pointed at the
// process-wide registry or any privately owned one (e.g. a Client's).
// Output is deterministic for a given snapshot: series sorted by name, then
// labels; doubles formatted with up to 10 significant digits.
#ifndef RC_SRC_OBS_EXPORT_H_
#define RC_SRC_OBS_EXPORT_H_

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "src/obs/metrics.h"

namespace rc::obs {

// Prometheus text exposition (# HELP / # TYPE, histograms as cumulative
// `_bucket{le=...}` series plus `_sum` / `_count`).
std::string PrometheusText(const RegistrySnapshot& snapshot);
std::string PrometheusText(const MetricsRegistry& registry);

// JSON snapshot: {"metrics": {"name{labels}": {...}, ...}}. Histograms carry
// count/sum/mean and the p50/p95/p99/p999 extraction.
std::string JsonText(const RegistrySnapshot& snapshot);
std::string JsonText(const MetricsRegistry& registry);

// Atomically replaces `path` with `text` (temp file + rename, so concurrent
// readers never observe a torn snapshot); false on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& text);

// Merges the registry's JSON snapshot into an existing JSON metrics file:
// entries under "metrics" keep their old value unless this snapshot carries
// the same series. An absent or unparseable file is simply overwritten.
// Lets several bench binaries accumulate into one BENCH_*.json.
bool MergeJsonMetricsFile(const std::string& path, const MetricsRegistry& registry);

// Background thread dumping a registry snapshot to a file on an interval
// (and once more on Stop, so short runs still produce a final snapshot).
class PeriodicDumper {
 public:
  enum class Format { kPrometheus, kJson };

  PeriodicDumper(const MetricsRegistry& registry, std::string path, Format format,
                 std::chrono::milliseconds interval);
  ~PeriodicDumper();  // implies Stop()

  void Stop();

 private:
  void DumpOnce();

  const MetricsRegistry& registry_;
  std::string path_;
  Format format_;
  std::chrono::milliseconds interval_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace rc::obs

#endif  // RC_SRC_OBS_EXPORT_H_
