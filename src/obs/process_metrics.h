// rc::obs — build identity and process-level gauges for introspection.
//
// RegisterBuildInfo publishes the classic Prometheus `rc_build_info` gauge:
// constant value 1, with the interesting facts (version, git sha, compiler,
// build type) carried as labels so a scrape can tell which binary it is
// talking to. UpdateProcessGauges refreshes uptime / RSS / open-fd gauges
// from /proc — call it before each scrape (the admin endpoint does), not on
// a timer.
#ifndef RC_SRC_OBS_PROCESS_METRICS_H_
#define RC_SRC_OBS_PROCESS_METRICS_H_

#include "src/obs/metrics.h"

namespace rc::obs {

// Registers rc_build_info{version=...,git_sha=...,compiler=...,build=...} 1.
// Idempotent (the registry dedups by key).
void RegisterBuildInfo(MetricsRegistry& registry);

// Sets rc_process_uptime_seconds, rc_process_resident_memory_bytes, and
// rc_process_open_fds from /proc/self. Values that cannot be read (non-proc
// filesystems) are left at their previous value.
void UpdateProcessGauges(MetricsRegistry& registry);

// The build label values, for /varz and banners: version, git sha,
// compiler, build type.
const char* BuildVersion();
const char* BuildGitSha();
const char* BuildCompiler();
const char* BuildType();

}  // namespace rc::obs

#endif  // RC_SRC_OBS_PROCESS_METRICS_H_
