// rc::obs — hierarchical request tracing: a per-thread trace context stack
// (trace_id / span_id / sampling decision), deterministic 1-in-N root
// sampling, and a bounded in-memory store of finished traces for the
// /tracez introspection endpoint.
//
// Relationship to trace_events.h: TraceSpan (RAII) is the single
// instrumentation point. When a sampled context is current, each span pushes
// itself onto the thread's context stack, so nested spans form a real tree
// (parent_span_id links) and the finished records land in TraceStore. The
// flat Chrome-trace ring (TraceLog) keeps working independently; a span
// feeds either, both, or neither depending on what is enabled.
//
// Cost model: with sampling off (the default) the added cost of a TraceSpan
// is one thread-local read. Sampled spans take the TraceStore mutex once at
// destruction — sampling (Tracer::SetSampleEvery) bounds how often that
// happens on the hot path.
//
// Cross-process: contexts travel over RCNP v2 frames (src/net/protocol.h).
// Trace and span ids are salted with the pid so ids minted on both ends of
// a connection do not collide within one trace.
#ifndef RC_SRC_OBS_TRACE_CONTEXT_H_
#define RC_SRC_OBS_TRACE_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace rc::obs {

// The propagated identity of one request. `trace_id == 0` means "no trace":
// unsampled requests carry no context at all, so every downstream span
// check is a single comparison.
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the span a child should use as its parent
  bool sampled = false;

  bool valid() const { return trace_id != 0 && sampled; }
};

namespace internal {
// The thread's current context. TraceSpan push/pops it; wire ingress
// installs it via ScopedTraceContext. Direct writes outside this header and
// trace_events are a bug.
inline thread_local TraceContext t_current{};
// Small sequential id of the calling thread, for span records.
uint32_t ThreadTraceTid();
}  // namespace internal

inline TraceContext CurrentTraceContext() { return internal::t_current; }

// Installs `ctx` as the thread's current context for a scope (wire ingress,
// cross-thread handoff) and restores the previous context on exit.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx) : prev_(internal::t_current) {
    internal::t_current = ctx;
  }
  ~ScopedTraceContext() { internal::t_current = prev_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

// Root sampling and id allocation. StartTrace() makes the per-request
// sampling decision deterministically (every Nth request starts a trace),
// so tests and CI runs sample predictably with no RNG on the hot path.
class Tracer {
 public:
  static Tracer& Global();

  // Sample one request in `n` as a new root trace; 0 disables new roots
  // (propagated contexts from the wire are still honoured).
  void SetSampleEvery(uint64_t n) { sample_every_.store(n, std::memory_order_relaxed); }
  uint64_t sample_every() const { return sample_every_.load(std::memory_order_relaxed); }

  // Allocates a context for a new root trace, or an invalid context when
  // this request lost the sampling draw. The returned span_id is 0: the
  // root TraceSpan created with it becomes the parentless root.
  TraceContext StartTrace();

  static uint64_t NextSpanId();

 private:
  Tracer();

  std::atomic<uint64_t> sample_every_{0};
  std::atomic<uint64_t> request_counter_{0};
  std::atomic<uint64_t> next_trace_;
};

// One finished span. `name` must be a string literal (same contract as
// TraceSpan / TraceLog). link_* is an optional follows-from edge to a span
// in another (or the same) trace — the combiner uses it to tie coalesced
// callers to the batch dispatch that actually did their work.
struct SpanRecord {
  const char* name = nullptr;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t tid = 0;
  uint64_t link_trace_id = 0;
  uint64_t link_span_id = 0;
};

// Records a synthetic span under `parent` without the RAII dance — used
// where the timed interval and the context are discovered at different
// times (the server's frame read happens before the frame is parsed, the
// response write after the handler returned). Returns the new span id, or 0
// when the parent is not a sampled context.
uint64_t RecordSpanUnder(const char* name, const TraceContext& parent,
                         uint64_t start_ns, uint64_t duration_ns,
                         uint64_t link_trace_id = 0, uint64_t link_span_id = 0);

// Bounded in-memory store of sampled traces, rendered by /tracez.
//
// Lifecycle: spans accumulate in an active map (trace_id -> bounded span
// list). When a trace finishes — its root span ends, or the server-side
// handler completes for a trace whose root lives in a remote process — it
// is classified into a latency bucket and offered to that bucket's
// reservoir (uniform sampling via a seeded LCG, so every latency regime
// keeps exemplars no matter how skewed the traffic). Kept traces stay
// readable and still absorb late spans (a response-write span lands after
// the client saw the bytes); rejected traces drop their spans immediately
// and leave a tombstone so stragglers don't resurrect them. The active map
// is FIFO-bounded; reservoir-kept traces are pinned until displaced.
class TraceStore {
 public:
  struct Options {
    size_t max_active_traces = 256;   // live + tombstone entries
    size_t max_spans_per_trace = 96;  // extra spans are dropped, not resized
    size_t traces_per_bucket = 4;     // reservoir K
  };

  static TraceStore& Global();

  void Configure(const Options& options);

  void Record(const SpanRecord& rec);

  // Classify + reservoir-offer. Idempotent per trace: the first caller
  // (root span destructor, or the server frame handler) decides the bucket.
  void FinishTrace(uint64_t trace_id, uint64_t root_duration_ns);

  // {"sampled":N,"active":M,"buckets":[{"le_us":...,"seen":...,
  //  "traces":[{"trace_id":"0x..","root_duration_us":..,"spans":[...]}]}]}
  std::string TracezJson() const;

  // Drops every trace and resets reservoir state (tests).
  void Clear();

  // Finished traces offered to the reservoir since the last Clear().
  uint64_t finished_count() const;

 private:
  enum class State : uint8_t { kActive, kRetained, kDropped };
  struct TraceEntry {
    std::vector<SpanRecord> spans;
    State state = State::kActive;
    uint64_t root_duration_ns = 0;
  };
  struct Bucket {
    uint64_t seen = 0;
    std::vector<uint64_t> trace_ids;
  };

  TraceStore();

  void EvictLocked();
  uint64_t NextRandomLocked();

  mutable std::mutex mu_;
  Options options_;
  std::unordered_map<uint64_t, TraceEntry> traces_;
  std::deque<uint64_t> arrival_order_;  // FIFO eviction candidates
  std::vector<double> bucket_bounds_us_;
  std::vector<Bucket> buckets_;  // bounds + overflow
  uint64_t finished_ = 0;
  uint64_t rng_ = 0x2545F4914F6CDD1Dull;
};

}  // namespace rc::obs

#endif  // RC_SRC_OBS_TRACE_CONTEXT_H_
