#include "src/obs/export.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>

namespace rc::obs {

namespace {

std::string Fmt(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

std::string Series(const MetricInfo& info, const std::string& extra_label = "") {
  std::string labels = info.labels;
  if (!extra_label.empty()) {
    labels += labels.empty() ? extra_label : "," + extra_label;
  }
  return labels.empty() ? info.name : info.name + "{" + labels + "}";
}

void Header(std::ostringstream& out, const MetricInfo& info, const char* type,
            std::map<std::string, bool>& emitted) {
  // One HELP/TYPE block per metric family, even when labels split it into
  // several series.
  if (emitted[info.name]) return;
  emitted[info.name] = true;
  if (!info.help.empty()) out << "# HELP " << info.name << " " << info.help << "\n";
  out << "# TYPE " << info.name << " " << type << "\n";
}

}  // namespace

std::string PrometheusText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  std::map<std::string, bool> emitted;
  for (const auto& c : snapshot.counters) {
    Header(out, c.info, "counter", emitted);
    out << Series(c.info) << " " << c.value << "\n";
  }
  for (const auto& g : snapshot.gauges) {
    Header(out, g.info, "gauge", emitted);
    out << Series(g.info) << " " << Fmt(g.value) << "\n";
  }
  for (const auto& h : snapshot.histograms) {
    Header(out, h.info, "histogram", emitted);
    // Cumulative buckets; empty buckets are elided (except +Inf) to keep the
    // exposition compact — cumulative counts lose nothing by the elision.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.hist.bounds.size(); ++b) {
      if (h.hist.buckets[b] == 0) continue;
      cumulative += h.hist.buckets[b];
      MetricInfo bucket_info = h.info;
      bucket_info.name += "_bucket";
      out << Series(bucket_info, "le=\"" + Fmt(h.hist.bounds[b]) + "\"") << " "
          << cumulative << "\n";
    }
    MetricInfo bucket_info = h.info;
    bucket_info.name += "_bucket";
    out << Series(bucket_info, "le=\"+Inf\"") << " " << h.hist.count << "\n";
    MetricInfo sum_info = h.info;
    sum_info.name += "_sum";
    out << Series(sum_info) << " " << Fmt(h.hist.sum) << "\n";
    MetricInfo count_info = h.info;
    count_info.name += "_count";
    out << Series(count_info) << " " << h.hist.count << "\n";
    if (h.has_window) {
      // Sliding-window companions (gauges: they go up and down as the ring
      // rotates, unlike the monotone lifetime series above).
      auto window_series = [&](const char* suffix, double v) {
        MetricInfo window_info = h.info;
        window_info.name += suffix;
        window_info.help.clear();
        Header(out, window_info, "gauge", emitted);
        out << Series(window_info) << " " << Fmt(v) << "\n";
      };
      window_series("_window_count", static_cast<double>(h.window.count));
      window_series("_window_p50", h.window.Quantile(0.50));
      window_series("_window_p95", h.window.Quantile(0.95));
      window_series("_window_p99", h.window.Quantile(0.99));
    }
  }
  return out.str();
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Collect());
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

// name{labels} -> JSON entry body, in registry (sorted) order.
std::vector<std::pair<std::string, std::string>> JsonEntries(
    const RegistrySnapshot& snapshot) {
  std::vector<std::pair<std::string, std::string>> entries;
  for (const auto& c : snapshot.counters) {
    entries.emplace_back(c.info.Key(),
                         "{\"type\":\"counter\",\"value\":" + std::to_string(c.value) + "}");
  }
  for (const auto& g : snapshot.gauges) {
    entries.emplace_back(g.info.Key(),
                         "{\"type\":\"gauge\",\"value\":" + Fmt(g.value) + "}");
  }
  for (const auto& h : snapshot.histograms) {
    std::string body = "{\"type\":\"histogram\",\"count\":" + std::to_string(h.hist.count) +
                       ",\"sum\":" + Fmt(h.hist.sum) + ",\"mean\":" + Fmt(h.hist.Mean()) +
                       ",\"p50\":" + Fmt(h.hist.Quantile(0.50)) +
                       ",\"p95\":" + Fmt(h.hist.Quantile(0.95)) +
                       ",\"p99\":" + Fmt(h.hist.Quantile(0.99)) +
                       ",\"p999\":" + Fmt(h.hist.Quantile(0.999));
    if (h.has_window) {
      body += ",\"window_count\":" + std::to_string(h.window.count) +
              ",\"window_p50\":" + Fmt(h.window.Quantile(0.50)) +
              ",\"window_p95\":" + Fmt(h.window.Quantile(0.95)) +
              ",\"window_p99\":" + Fmt(h.window.Quantile(0.99));
    }
    body += "}";
    entries.emplace_back(h.info.Key(), std::move(body));
  }
  return entries;
}

std::string RenderJson(const std::vector<std::pair<std::string, std::string>>& entries) {
  std::string out = "{\n  \"metrics\": {";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",";
    out += "\n    \"" + JsonEscape(entries[i].first) + "\": " + entries[i].second;
  }
  out += entries.empty() ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace

std::string JsonText(const RegistrySnapshot& snapshot) {
  return RenderJson(JsonEntries(snapshot));
}

std::string JsonText(const MetricsRegistry& registry) {
  return JsonText(registry.Collect());
}

bool WriteTextFile(const std::string& path, const std::string& text) {
  // Write-then-rename so a concurrent reader (a scraper polling the dump
  // file) sees either the old snapshot or the new one, never a torn write.
  // The pid in the temp name keeps parallel dumpers to the same path from
  // clobbering each other's in-flight temp files.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    out.flush();
    if (!out) {
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

namespace {

// Minimal scanner for the {"metrics": {...}} layout written above: extracts
// the top-level entries of the "metrics" object as key -> raw value text.
// Tolerant by design — any structural surprise returns false and the caller
// overwrites the file.
bool ParseMetricsFile(const std::string& text,
                      std::map<std::string, std::string>& out) {
  size_t pos = text.find("\"metrics\"");
  if (pos == std::string::npos) return false;
  pos = text.find('{', pos);
  if (pos == std::string::npos) return false;
  ++pos;
  auto skip_ws = [&] {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\n' ||
                                 text[pos] == '\r' || text[pos] == '\t')) {
      ++pos;
    }
  };
  auto parse_string = [&](std::string& s) {
    if (pos >= text.size() || text[pos] != '"') return false;
    ++pos;
    s.clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) {
        s += text[pos + 1];  // good enough for the \" and \\ we emit
        pos += 2;
      } else {
        s += text[pos++];
      }
    }
    if (pos >= text.size()) return false;
    ++pos;  // closing quote
    return true;
  };
  while (true) {
    skip_ws();
    if (pos < text.size() && text[pos] == '}') return true;  // end of "metrics"
    std::string key;
    if (!parse_string(key)) return false;
    skip_ws();
    if (pos >= text.size() || text[pos] != ':') return false;
    ++pos;
    skip_ws();
    // Capture a balanced value (object, or any scalar up to , or }).
    size_t start = pos;
    int depth = 0;
    bool in_string = false;
    for (; pos < text.size(); ++pos) {
      char c = text[pos];
      if (in_string) {
        if (c == '\\') {
          ++pos;
        } else if (c == '"') {
          in_string = false;
        }
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
    }
    if (pos > text.size() || pos == start) return false;
    out[key] = text.substr(start, pos - start);
    skip_ws();
    if (pos < text.size() && text[pos] == ',') ++pos;
  }
}

}  // namespace

bool MergeJsonMetricsFile(const std::string& path, const MetricsRegistry& registry) {
  std::map<std::string, std::string> merged;
  {
    std::ifstream in(path);
    if (in) {
      std::stringstream buffer;
      buffer << in.rdbuf();
      std::map<std::string, std::string> existing;
      if (ParseMetricsFile(buffer.str(), existing)) merged = std::move(existing);
    }
  }
  for (auto& [key, body] : JsonEntries(registry.Collect())) merged[key] = std::move(body);
  std::vector<std::pair<std::string, std::string>> entries(merged.begin(), merged.end());
  return WriteTextFile(path, RenderJson(entries));
}

PeriodicDumper::PeriodicDumper(const MetricsRegistry& registry, std::string path,
                               Format format, std::chrono::milliseconds interval)
    : registry_(registry),
      path_(std::move(path)),
      format_(format),
      interval_(interval),
      thread_([this] {
        std::unique_lock<std::mutex> lock(mu_);
        while (!cv_.wait_for(lock, interval_, [this] { return stop_; })) {
          lock.unlock();
          DumpOnce();
          lock.lock();
        }
      }) {}

PeriodicDumper::~PeriodicDumper() { Stop(); }

void PeriodicDumper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  DumpOnce();  // final snapshot so short runs still leave a file behind
}

void PeriodicDumper::DumpOnce() {
  WriteTextFile(path_, format_ == Format::kPrometheus ? PrometheusText(registry_)
                                                      : JsonText(registry_));
}

}  // namespace rc::obs
