// rc::ml::ExecEngine — a compiled, immutable inference representation for
// tree ensembles, built once per loaded model (on the store-load path, never
// on the prediction path).
//
// Layout (DESIGN.md "Execution engine"): every internal node of every tree
// in the ensemble lives in one contiguous structure-of-arrays node pool —
// separate `feature_idx`, `threshold`, `left_child`, `right_child` arrays —
// instead of the per-tree array-of-structs the trainer produces. Leaves are
// not nodes at all: a child link is either a non-negative index into the
// pool or the bitwise complement (~payload, always negative) of an index
// into the leaf-payload table. The walk loop is therefore branch-light:
//
//   while (link >= 0)
//     link = x[feature_idx[link]] < threshold[link] ? left_child[link]
//                                                   : right_child[link];
//   payload = ~link;
//
// One comparison steers the descent and the sign bit terminates it — no
// "is this a leaf" load, no pointer chasing across per-tree allocations.
//
// The batched entry point `PredictBatch` walks tree-major (outer loop over
// trees, inner loop over examples) so a tree's slice of the pool stays hot
// in cache across the whole batch; per-example accumulation order over trees
// is unchanged, which keeps results bit-identical to the legacy traversal
// (the exec_engine parity suite asserts exact equality, NaN/∞ inputs
// included). All entry points are allocation-free: callers own the output
// buffers, and the engine needs no scratch beyond them.
#ifndef RC_SRC_ML_EXEC_ENGINE_H_
#define RC_SRC_ML_EXEC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/tree.h"

namespace rc::ml {

class RandomForest;
class GradientBoostedTrees;

class ExecEngine {
 public:
  // How per-tree leaf payloads combine into class probabilities.
  enum class Family {
    kAveragedForest,  // classification trees; mean of per-leaf distributions
    kBoosted,         // regression trees; logit accumulation + sigmoid/softmax
  };

  static ExecEngine Compile(const RandomForest& forest);
  static ExecEngine Compile(const GradientBoostedTrees& gbt);
  // Dispatch on the concrete classifier type; nullptr for types without a
  // compiled representation (e.g. test doubles).
  static std::shared_ptr<const ExecEngine> TryCompile(const Classifier& model);

  Family family() const { return family_; }
  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }
  size_t tree_count() const { return root_link_.size(); }
  size_t internal_node_count() const { return feature_idx_.size(); }
  size_t leaf_payload_count() const {
    return family_ == Family::kAveragedForest
               ? leaf_probs_.size() / static_cast<size_t>(num_classes_)
               : leaf_values_.size();
  }

  // Batched inference: `X` is row-major with `n` examples of `stride`
  // doubles each (stride >= num_features(); only the first num_features()
  // of each row are read). Writes n * num_classes() probabilities to
  // `proba_out`. Allocation-free; `proba_out` doubles as the logit scratch
  // for the boosted family.
  void PredictBatch(const double* X, size_t n, size_t stride, double* proba_out) const;

  // Single-example form writing into caller scratch; `proba_out.size()` must
  // be num_classes(). Exactly PredictBatch with n == 1.
  void PredictInto(std::span<const double> x, std::span<double> proba_out) const;

  // Argmax + confidence without allocation; `scratch.size()` must be
  // num_classes(). Ties break toward the lower class index, matching
  // Classifier::PredictScored.
  Classifier::Scored PredictScored(std::span<const double> x,
                                   std::span<double> scratch) const;

 private:
  ExecEngine() = default;

  // Flattens one tree into the pool; returns nothing, appends the root link.
  void AddTree(const DecisionTree& tree);

  // Lockstep width for the batched walk. Each example's descent is a chain
  // of dependent loads; stepping a lane of descents round-robin gives the
  // CPU that many independent chains to overlap, which is where the batched
  // throughput win over single-example calls comes from.
  static constexpr size_t kWalkLanes = 16;
  // Walks `m` (<= kWalkLanes) consecutive rows of `X` through the tree
  // rooted at `root` in lockstep for exactly `rounds` comparison rounds
  // (the tree's depth, from tree_depth_); writes each row's leaf payload
  // index.
  void WalkLane(int32_t root, int32_t rounds, const double* X, size_t stride,
                size_t m, int32_t* payload) const;

  // Walks one tree from `link` for example `x`; returns the leaf payload.
  int32_t Walk(int32_t link, const double* x) const {
    while (link >= 0) {
      link = x[feature_idx_[static_cast<size_t>(link)]] <
                     threshold_[static_cast<size_t>(link)]
                 ? left_child_[static_cast<size_t>(link)]
                 : right_child_[static_cast<size_t>(link)];
    }
    return ~link;
  }
  // Turns accumulated logits (boosted) / sums (forest) into probabilities.
  void FinalizeRows(size_t n, double* proba_out) const;

  Family family_ = Family::kAveragedForest;
  int num_classes_ = 0;
  int num_features_ = 0;
  double learning_rate_ = 0.0;      // boosted only
  std::vector<double> base_score_;  // boosted only (1 logit binary, k multi)

  // Per-tree root link: >= 0 indexes the node pool, < 0 is ~payload (a tree
  // whose root is already a leaf).
  std::vector<int32_t> root_link_;
  // Per-tree depth (max internal nodes on any root-to-leaf path): the exact
  // round count for the lockstep lane walk, so the batch loop needs no
  // "any lane still descending?" check between rounds.
  std::vector<int32_t> tree_depth_;
  // The SoA internal-node pool, all trees concatenated.
  std::vector<int32_t> feature_idx_;
  std::vector<double> threshold_;
  std::vector<int32_t> left_child_;
  std::vector<int32_t> right_child_;
  // Leaf payload tables (one of the two, per family).
  std::vector<float> leaf_probs_;    // forest: payload * num_classes + c
  std::vector<double> leaf_values_;  // boosted: payload
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_EXEC_ENGINE_H_
