// rc::ml::ExecEngine — a compiled, immutable inference representation for
// tree ensembles, built once per loaded model (on the store-load path, never
// on the prediction path).
//
// Layout (DESIGN.md "Execution engine"): every internal node of every tree
// in the ensemble lives in one contiguous structure-of-arrays node pool —
// separate `feature_idx`, `threshold`, and packed `child_pair` arrays (both
// 32-bit child links in one 64-bit word: left in the low half, right in the
// high half, so one load — and in the AVX2 kernel one gather — fetches both
// descent candidates) — instead of the per-tree array-of-structs the trainer
// produces. Leaves are not nodes at all: a child link is either a
// non-negative index into the pool or the bitwise complement (~payload,
// always negative) of an index into the leaf-payload table. The walk loop is
// therefore branch-light:
//
//   while (link >= 0)
//     pair = child_pair[link];                      // {left, right} together
//     link = x[feature_idx[link]] < threshold[link] ? low32(pair)
//                                                   : high32(pair);
//   payload = ~link;
//
// One comparison steers the descent and the sign bit terminates it — no
// "is this a leaf" load, no pointer chasing across per-tree allocations.
//
// The batched entry point `PredictBatch` walks tree-major (outer loop over
// trees, inner loop over examples) so a tree's slice of the pool stays hot
// in cache across the whole batch; per-example accumulation order over trees
// is unchanged, which keeps results bit-identical to the legacy traversal
// (the exec_engine parity suite asserts exact equality, NaN/∞ inputs
// included). All entry points are allocation-free: callers own the output
// buffers, and the engine needs no scratch beyond them.
//
// Walk modes (`ExecEngine::Mode`): the lockstep walk has three executions.
// kScalar is the portable branchless 16-lane walk; kAvx2 runs full 16-lane
// blocks through the gather/compare/blend kernel in exec_engine_avx2.cc
// (runtime CPUID dispatch — bit-exact with kScalar, since the kernel only
// selects leaf indices); kQuantized walks a shrunken u16 node pool against
// per-feature binned inputs (exact split decisions, tolerance-level output
// deltas from quantized leaf tables — see "Quantized pool" below). kAuto
// resolves to kAvx2 when available, else kScalar; unsupported explicit
// requests degrade the same way, so every mode works on every host.
#ifndef RC_SRC_ML_EXEC_ENGINE_H_
#define RC_SRC_ML_EXEC_ENGINE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/tree.h"

namespace rc::ml {

class RandomForest;
class GradientBoostedTrees;

class ExecEngine {
 public:
  // How per-tree leaf payloads combine into class probabilities.
  enum class Family {
    kAveragedForest,  // classification trees; mean of per-leaf distributions
    kBoosted,         // regression trees; logit accumulation + sigmoid/softmax
  };

  // Which walk executes a PredictBatch/PredictInto/PredictScored call. See
  // the header comment; Resolve() maps a requested mode to the one that
  // actually runs on this host/model.
  enum class Mode : uint8_t {
    kAuto = 0,       // fastest exact walk: AVX2 when available, else scalar
    kScalar = 1,     // portable branchless lockstep walk
    kAvx2 = 2,       // gather/blend kernel; falls back to scalar if absent
    kQuantized = 3,  // u16 binned pool; falls back to kAuto if not compiled
  };
  static const char* ModeName(Mode mode);
  // Parses "auto" / "scalar" / "avx2" / "quantized" (exact match).
  static std::optional<Mode> ParseMode(std::string_view name);
  // True when the AVX2 kernel is compiled in (RC_ENABLE_AVX2), the CPU
  // reports AVX2, and the RC_DISABLE_AVX2 env kill-switch is not set (any
  // non-empty value other than "0" disables; read once per process).
  static bool Avx2Available();

  static ExecEngine Compile(const RandomForest& forest);
  static ExecEngine Compile(const GradientBoostedTrees& gbt);
  // Dispatch on the concrete classifier type; nullptr for types without a
  // compiled representation (e.g. test doubles).
  static std::shared_ptr<const ExecEngine> TryCompile(const Classifier& model);

  Family family() const { return family_; }
  int num_classes() const { return num_classes_; }
  int num_features() const { return num_features_; }
  size_t tree_count() const { return root_link_.size(); }
  size_t internal_node_count() const { return feature_idx_.size(); }
  size_t leaf_payload_count() const {
    return family_ == Family::kAveragedForest
               ? leaf_probs_.size() / static_cast<size_t>(num_classes_)
               : leaf_values_.size();
  }

  // The mode a request actually executes as on this host: kAuto picks AVX2
  // when available, kAvx2 degrades to kScalar without the kernel, and
  // kQuantized degrades to the resolved kAuto when the quantized pool was
  // not representable for this model.
  Mode Resolve(Mode mode) const;

  // --- memory footprint (the cache-residency story; see bytes() users in
  // core::Client's rc_client_model_bytes gauge and perf_exec_engine) ---
  // f64 node pool (feature/threshold/child arrays) + leaf payload tables.
  size_t bytes() const;
  // The quantized u16 pool + its quantized leaf tables; 0 when absent.
  size_t quantized_bytes() const;
  // Per-feature bin cut tables backing the quantized walk (consulted once
  // per row at binning time, not per node — reported separately from the
  // per-node-hot quantized_bytes()).
  size_t bin_table_bytes() const;
  bool has_quantized() const { return quant_ != nullptr; }

  // --- quantized-pool introspection (tests; the binning property suite) ---
  // Sorted distinct training-observed thresholds for `feature`; empty when
  // the feature is unsplit or no quantized pool exists.
  std::span<const double> QuantizedCuts(int feature) const;
  // The bin index the quantized walk would use for `x` on `feature`: the
  // first cut index i with x < cuts[i] (cut count if none — NaN lands here,
  // so NaN keeps descending right, exactly like the f64 compare). The
  // quantized node stores rank+1 of its threshold, so
  //   bin(x) < stored  <=>  x < threshold
  // for every representable input; quantization never flips a split.
  uint16_t QuantizeValue(int feature, double x) const;

  // Batched inference: `X` is row-major with `n` examples of `stride`
  // doubles each (stride >= num_features(); only the first num_features()
  // of each row are read). Writes n * num_classes() probabilities to
  // `proba_out`. Allocation-free; `proba_out` doubles as the logit scratch
  // for the boosted family.
  void PredictBatch(const double* X, size_t n, size_t stride, double* proba_out,
                    Mode mode = Mode::kAuto) const;

  // Single-example form writing into caller scratch; `proba_out.size()` must
  // be num_classes(). Exactly PredictBatch with n == 1.
  void PredictInto(std::span<const double> x, std::span<double> proba_out,
                   Mode mode = Mode::kAuto) const;

  // Argmax + confidence without allocation; `scratch.size()` must be
  // num_classes(). Ties break toward the lower class index, matching
  // Classifier::PredictScored.
  Classifier::Scored PredictScored(std::span<const double> x,
                                   std::span<double> scratch,
                                   Mode mode = Mode::kAuto) const;

 private:
  ExecEngine() = default;

  // Flattens one tree into the pool; returns nothing, appends the root link.
  void AddTree(const DecisionTree& tree);
  // Builds the quantized pool from the finished f64 pool; silently skips
  // (has_quantized() == false, kQuantized falls back) when the model exceeds
  // the u16 representation limits below.
  void BuildQuantized();

  // Lockstep width for the batched walk. Each example's descent is a chain
  // of dependent loads; stepping a lane of descents round-robin gives the
  // CPU that many independent chains to overlap, which is where the batched
  // throughput win over single-example calls comes from.
  static constexpr size_t kWalkLanes = 16;
  // Block width for the batched accumulation loop. The AVX2 kernel prefers
  // full 32-row blocks (twice the independent gather chains, half the
  // per-call overhead — which shallow boosted trees are bound by); the
  // scalar walk splits a block into 16-lane lockstep chunks, so block size
  // never changes scalar results.
  static constexpr size_t kSimdBlock = 32;
  // Representation limits for the quantized pool (BuildQuantized): per-tree
  // node/leaf links are 15-bit tree-relative, feature indices and bin ranks
  // are u16, and the forest's integer leaf accumulator must not overflow
  // 32 bits (trees * 65535 < 2^32).
  static constexpr size_t kMaxQuantFeatures = 512;  // bounds the stack bin buffer
  static constexpr size_t kMaxQuantClasses = 64;
  static constexpr size_t kMaxQuantTreeNodes = 0x7FFF;
  static constexpr size_t kMaxQuantTreeLeaves = 0x8000;
  static constexpr size_t kMaxQuantCuts = 0xFFFE;
  static constexpr size_t kMaxQuantTrees = 60000;
  // AVX2 gather indices are int32 row_offset + feature; keep 4 * stride
  // comfortably inside int32 or fall back to the scalar walk.
  static constexpr size_t kMaxSimdStride = size_t{1} << 28;

  // One branchless descent step shared by the scalar lockstep walk and the
  // AVX2 tail path (lanes that don't fill a 16-wide block). A lane already
  // at its leaf (negative link) re-reads node 0 harmlessly and keeps its
  // link via mask selects, so lanes reaching leaves at different depths cost
  // no branch mispredictions. The masks are spelled out in integer
  // arithmetic (not ?:) because the compiler otherwise lowers the descend
  // direction to a conditional branch; a balanced tree makes that branch
  // ~50% mispredicted, and every flush discards the other lanes' in-flight
  // loads, serializing the whole walk.
  int32_t StepBranchless(int32_t link, const double* row) const {
    const int32_t done = link >> 31;  // all-ones at a leaf
    const size_t u = static_cast<size_t>(link & ~done);  // node 0 once done
    const int32_t go_left = -static_cast<int32_t>(
        row[static_cast<size_t>(feature_idx_[u])] < threshold_[u]);
    // One 64-bit load fetches both children; the variable shift (0 when
    // descending left, 32 when right) selects without a branch.
    const uint64_t pair = static_cast<uint64_t>(child_pair_[u]);
    const int32_t next = static_cast<int32_t>(pair >> (32 & ~go_left));
    return (link & done) | (next & ~done);
  }

  // Walks `m` (<= kWalkLanes) consecutive rows of `X` through the tree
  // rooted at `root` in lockstep for exactly `rounds` comparison rounds
  // (the tree's depth, from tree_depth_); writes each row's leaf payload
  // index.
  void WalkLane(int32_t root, int32_t rounds, const double* X, size_t stride,
                size_t m, int32_t* payload) const;
  // Mode-dispatched block walk for `m` <= kSimdBlock rows: full 32-row and
  // 16-row blocks go through the AVX2 kernels when `avx2`, everything else
  // (tails, leaf-roots) through the scalar WalkLane in 16-lane chunks.
  void WalkBlock(bool avx2, int32_t root, int32_t rounds, const double* X,
                 size_t stride, size_t m, int32_t* payload) const;

  // Walks one tree from `link` for example `x`; returns the leaf payload.
  int32_t Walk(int32_t link, const double* x) const {
    while (link >= 0) {
      const size_t u = static_cast<size_t>(link);
      const uint64_t pair = static_cast<uint64_t>(child_pair_[u]);
      link = static_cast<int32_t>(
          x[static_cast<size_t>(feature_idx_[u])] < threshold_[u] ? pair
                                                                  : pair >> 32);
    }
    return ~link;
  }
  // Turns accumulated logits (boosted) / sums (forest) into probabilities.
  void FinalizeRows(size_t n, double* proba_out) const;

  // --- quantized walk (see "Quantized pool" in DESIGN.md) ---
  void PredictBatchQuantized(const double* X, size_t n, size_t stride,
                             double* proba_out) const;
  // Bins `m` rows of X into `bins` (m x num_features u16, row-major).
  void BinBlock(const double* X, size_t m, size_t stride, uint16_t* bins) const;
  // Lockstep walk of tree `t` over pre-binned rows; absolute leaf payloads.
  void WalkLaneQuantized(size_t t, const uint16_t* bins, size_t m,
                         int32_t* payload) const;

  Family family_ = Family::kAveragedForest;
  int num_classes_ = 0;
  int num_features_ = 0;
  double learning_rate_ = 0.0;      // boosted only
  std::vector<double> base_score_;  // boosted only (1 logit binary, k multi)

  // Per-tree root link: >= 0 indexes the node pool, < 0 is ~payload (a tree
  // whose root is already a leaf).
  std::vector<int32_t> root_link_;
  // Per-tree depth (max internal nodes on any root-to-leaf path): the exact
  // round count for the lockstep lane walk, so the batch loop needs no
  // "any lane still descending?" check between rounds.
  std::vector<int32_t> tree_depth_;
  // Per-tree first node-pool slot / first leaf-payload index (the quantized
  // pool's 15-bit links are relative to these).
  std::vector<uint32_t> tree_node_base_;
  std::vector<uint32_t> tree_leaf_base_;
  // The SoA internal-node pool, all trees concatenated. Child links are
  // packed in pairs — left in the low 32 bits, right in the high 32 — so a
  // descent step costs one child load (one gather per 4 lanes in the AVX2
  // kernel) instead of two.
  std::vector<int32_t> feature_idx_;
  std::vector<double> threshold_;
  std::vector<int64_t> child_pair_;
  // Leaf payload tables (one of the two, per family).
  std::vector<float> leaf_probs_;    // forest: payload * num_classes + c
  std::vector<double> leaf_values_;  // boosted: payload

  // Quantized pool: per-feature bin cut tables plus a u16 SoA node pool
  // parallel (same node order) to the f64 pool. A child link is a 15-bit
  // tree-relative node index, or kLeafBit | 15-bit tree-relative leaf
  // payload index. Thresholds are bin ranks (+1), so the walk compares two
  // u16s instead of two doubles; split decisions are exact by the rank
  // construction (see QuantizeValue). Leaf tables shrink too: forest
  // probabilities as 1/65535 fixed point accumulated in u32 (tolerance
  // ~1.5e-5), boosted leaf values as f32.
  struct Quantized {
    static constexpr uint16_t kLeafBit = 0x8000;
    std::vector<uint32_t> cut_offsets;  // num_features + 1
    std::vector<double> cuts;           // concatenated sorted distinct thresholds
    std::vector<uint16_t> feature;
    std::vector<uint16_t> threshold;  // bin rank + 1; walk tests bin < threshold
    std::vector<uint16_t> left;
    std::vector<uint16_t> right;
    std::vector<uint16_t> leaf_probs;  // forest: round(p * 65535)
    std::vector<float> leaf_values;    // boosted
  };
  std::unique_ptr<const Quantized> quant_;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_EXEC_ENGINE_H_
