#include "src/ml/exec_engine.h"

#include <algorithm>
#include <stdexcept>

#include "src/ml/gbt.h"
#include "src/ml/link_functions.h"
#include "src/ml/random_forest.h"

namespace rc::ml {

void ExecEngine::AddTree(const DecisionTree& tree) {
  const std::span<const DecisionTree::Node> nodes = tree.nodes();
  if (nodes.empty()) throw std::invalid_argument("ExecEngine: empty tree");
  const size_t k = static_cast<size_t>(num_classes_);

  // Pass 1: assign every node its link. Internal nodes take pool slots in
  // node order; leaves copy their payload into the engine table and encode
  // the payload index as its bitwise complement.
  std::vector<int32_t> remap(nodes.size());
  int32_t next_internal = static_cast<int32_t>(feature_idx_.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const DecisionTree::Node& node = nodes[i];
    if (node.feature >= 0) {
      remap[i] = next_internal++;
      continue;
    }
    int32_t payload;
    if (family_ == Family::kAveragedForest) {
      payload = static_cast<int32_t>(leaf_probs_.size() / k);
      const std::span<const float> probs = tree.leaf_probs();
      size_t src = static_cast<size_t>(node.payload) * k;
      leaf_probs_.insert(leaf_probs_.end(), probs.begin() + src,
                         probs.begin() + src + k);
    } else {
      payload = static_cast<int32_t>(leaf_values_.size());
      leaf_values_.push_back(tree.leaf_values()[static_cast<size_t>(node.payload)]);
    }
    remap[i] = ~payload;
  }

  // Pass 2: emit internal nodes into the SoA pool, children remapped.
  for (const DecisionTree::Node& node : nodes) {
    if (node.feature < 0) continue;
    feature_idx_.push_back(node.feature);
    threshold_.push_back(node.threshold);
    left_child_.push_back(remap[static_cast<size_t>(node.left)]);
    right_child_.push_back(remap[static_cast<size_t>(node.right)]);
  }
  root_link_.push_back(remap[0]);
  // depth() counts nodes on the longest root-to-leaf path; a lane descending
  // from the root reaches its leaf in at most depth() - 1 comparisons.
  tree_depth_.push_back(static_cast<int32_t>(tree.depth()) - 1);
}

ExecEngine ExecEngine::Compile(const RandomForest& forest) {
  ExecEngine engine;
  engine.family_ = Family::kAveragedForest;
  engine.num_classes_ = forest.num_classes();
  engine.num_features_ = forest.num_features();
  if (engine.num_classes_ <= 0) {
    throw std::invalid_argument("ExecEngine: forest without classes");
  }
  for (size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    if (tree.num_classes() != engine.num_classes_) {
      throw std::invalid_argument("ExecEngine: tree class count disagrees with forest");
    }
    engine.AddTree(tree);
  }
  return engine;
}

ExecEngine ExecEngine::Compile(const GradientBoostedTrees& gbt) {
  ExecEngine engine;
  engine.family_ = Family::kBoosted;
  engine.num_classes_ = gbt.num_classes();
  engine.num_features_ = gbt.num_features();
  engine.learning_rate_ = gbt.learning_rate();
  engine.base_score_.assign(gbt.base_score().begin(), gbt.base_score().end());
  if (engine.num_classes_ < 2) {
    throw std::invalid_argument("ExecEngine: boosted model needs >= 2 classes");
  }
  for (size_t t = 0; t < gbt.tree_count(); ++t) {
    const DecisionTree& tree = gbt.tree(t);
    if (tree.is_classifier()) {
      throw std::invalid_argument("ExecEngine: boosted tree is not a regression tree");
    }
    engine.AddTree(tree);
  }
  return engine;
}

std::shared_ptr<const ExecEngine> ExecEngine::TryCompile(const Classifier& model) {
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return std::make_shared<const ExecEngine>(Compile(*forest));
  }
  if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
    return std::make_shared<const ExecEngine>(Compile(*gbt));
  }
  return nullptr;
}

void ExecEngine::WalkLane(int32_t root, int32_t rounds, const double* X, size_t stride,
                          size_t m, int32_t* payload) const {
  if (root < 0) {
    for (size_t j = 0; j < m; ++j) payload[j] = ~root;
    return;
  }
  const int32_t* feat = feature_idx_.data();
  const double* thr = threshold_.data();
  const int32_t* left = left_child_.data();
  const int32_t* right = right_child_.data();
  int32_t link[kWalkLanes];
  for (size_t j = 0; j < m; ++j) link[j] = root;
  // Fixed round count (the tree's depth), each round stepping every lane
  // once. The per-lane loads are independent across lanes, so a cache miss
  // in one descent overlaps with the others instead of stalling the whole
  // batch (the single-example Walk is one serial dependent-load chain). The
  // step is branchless: a lane already at its leaf (negative link) re-reads
  // node 0 harmlessly and keeps its link via conditional moves, so lanes
  // reaching leaves at different depths cost no branch mispredictions, and
  // the loop needs no "any lane still descending?" check between rounds.
  // The masks are spelled out in integer arithmetic (not ?:) because the
  // compiler otherwise lowers the descend direction to a conditional branch;
  // a balanced tree makes that branch ~50% mispredicted, and every flush
  // discards the other lanes' in-flight loads, serializing the whole walk.
  for (int32_t r = 0; r < rounds; ++r) {
    for (size_t j = 0; j < m; ++j) {
      const int32_t l = link[j];
      const int32_t done = l >> 31;                     // all-ones at a leaf
      const size_t u = static_cast<size_t>(l & ~done);  // node 0 once done
      const int32_t go_left = -static_cast<int32_t>(
          X[j * stride + static_cast<size_t>(feat[u])] < thr[u]);
      const int32_t next = (left[u] & go_left) | (right[u] & ~go_left);
      link[j] = (l & done) | (next & ~done);
    }
  }
  for (size_t j = 0; j < m; ++j) payload[j] = ~link[j];
}

void ExecEngine::PredictBatch(const double* X, size_t n, size_t stride,
                              double* proba_out) const {
  const size_t k = static_cast<size_t>(num_classes_);
  if (n == 0) return;

  // All three families walk tree-major (outer loop over trees, lanes of
  // examples in lockstep inside): a tree's slice of the node pool stays hot
  // across the whole batch, and each example still accumulates its leaf
  // values in increasing tree order — bit-identical to the legacy traversal.
  int32_t payload[kWalkLanes];

  if (family_ == Family::kAveragedForest) {
    std::fill(proba_out, proba_out + n * k, 0.0);
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      for (size_t i0 = 0; i0 < n; i0 += kWalkLanes) {
        const size_t m = std::min(kWalkLanes, n - i0);
        WalkLane(root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          const float* probs =
              leaf_probs_.data() + static_cast<size_t>(payload[j]) * k;
          double* acc = proba_out + (i0 + j) * k;
          for (size_t c = 0; c < k; ++c) acc[c] += probs[c];
        }
      }
    }
    // Same normalization as the legacy traversal (0 for an empty ensemble).
    const double inv =
        root_link_.empty() ? 0.0 : 1.0 / static_cast<double>(root_link_.size());
    for (size_t i = 0; i < n * k; ++i) proba_out[i] *= inv;
    return;
  }

  // Boosted: accumulate logits directly in proba_out (no scratch), exactly
  // mirroring the legacy per-example accumulation order over trees.
  const bool binary = (num_classes_ == 2);
  if (binary) {
    // Row layout during accumulation: slot 1 holds the single logit.
    for (size_t i = 0; i < n; ++i) proba_out[i * 2 + 1] = base_score_[0];
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      for (size_t i0 = 0; i0 < n; i0 += kWalkLanes) {
        const size_t m = std::min(kWalkLanes, n - i0);
        WalkLane(root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * 2 + 1] +=
              learning_rate_ * leaf_values_[static_cast<size_t>(payload[j])];
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      std::copy(base_score_.begin(), base_score_.end(), proba_out + i * k);
    }
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      const size_t cls = t % k;
      for (size_t i0 = 0; i0 < n; i0 += kWalkLanes) {
        const size_t m = std::min(kWalkLanes, n - i0);
        WalkLane(root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * k + cls] +=
              learning_rate_ * leaf_values_[static_cast<size_t>(payload[j])];
        }
      }
    }
  }
  FinalizeRows(n, proba_out);
}

void ExecEngine::FinalizeRows(size_t n, double* proba_out) const {
  const size_t k = static_cast<size_t>(num_classes_);
  if (num_classes_ == 2) {
    for (size_t i = 0; i < n; ++i) {
      const double p1 = Sigmoid(proba_out[i * 2 + 1]);
      proba_out[i * 2] = 1.0 - p1;
      proba_out[i * 2 + 1] = p1;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    std::span<double> row(proba_out + i * k, k);
    Softmax(row, row);  // element-wise in place; see link_functions.h
  }
}

void ExecEngine::PredictInto(std::span<const double> x,
                             std::span<double> proba_out) const {
  PredictBatch(x.data(), 1, x.size(), proba_out.data());
}

Classifier::Scored ExecEngine::PredictScored(std::span<const double> x,
                                             std::span<double> scratch) const {
  PredictInto(x, scratch);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (scratch[static_cast<size_t>(c)] > scratch[static_cast<size_t>(best)]) best = c;
  }
  return Classifier::Scored{best, scratch[static_cast<size_t>(best)]};
}

}  // namespace rc::ml
