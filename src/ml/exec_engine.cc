#include "src/ml/exec_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "src/ml/exec_engine_simd.h"
#include "src/ml/gbt.h"
#include "src/ml/link_functions.h"
#include "src/ml/random_forest.h"

namespace rc::ml {

const char* ExecEngine::ModeName(Mode mode) {
  switch (mode) {
    case Mode::kAuto: return "auto";
    case Mode::kScalar: return "scalar";
    case Mode::kAvx2: return "avx2";
    case Mode::kQuantized: return "quantized";
  }
  return "unknown";
}

std::optional<ExecEngine::Mode> ExecEngine::ParseMode(std::string_view name) {
  if (name == "auto") return Mode::kAuto;
  if (name == "scalar") return Mode::kScalar;
  if (name == "avx2") return Mode::kAvx2;
  if (name == "quantized") return Mode::kQuantized;
  return std::nullopt;
}

bool ExecEngine::Avx2Available() {
  static const bool available = [] {
    if (!internal::CompiledWithAvx2()) return false;
#if defined(__x86_64__) || defined(__i386__)
    if (!__builtin_cpu_supports("avx2")) return false;
#else
    return false;
#endif
    // Operational kill-switch (and the CI lever that exercises the scalar
    // fallback on AVX2 hosts — tools/check_all.sh).
    const char* kill = std::getenv("RC_DISABLE_AVX2");
    return kill == nullptr || kill[0] == '\0' ||
           std::strcmp(kill, "0") == 0;
  }();
  return available;
}

ExecEngine::Mode ExecEngine::Resolve(Mode mode) const {
  if (mode == Mode::kQuantized) {
    if (has_quantized()) return Mode::kQuantized;
    mode = Mode::kAuto;  // model not representable: fastest exact walk
  }
  if (mode == Mode::kAuto) return Avx2Available() ? Mode::kAvx2 : Mode::kScalar;
  if (mode == Mode::kAvx2 && !Avx2Available()) return Mode::kScalar;
  return mode;
}

size_t ExecEngine::bytes() const {
  return feature_idx_.size() * sizeof(int32_t) +
         threshold_.size() * sizeof(double) +
         child_pair_.size() * sizeof(int64_t) +
         leaf_probs_.size() * sizeof(float) +
         leaf_values_.size() * sizeof(double);
}

size_t ExecEngine::quantized_bytes() const {
  if (quant_ == nullptr) return 0;
  const Quantized& q = *quant_;
  return (q.feature.size() + q.threshold.size() + q.left.size() +
          q.right.size() + q.leaf_probs.size()) * sizeof(uint16_t) +
         q.leaf_values.size() * sizeof(float);
}

size_t ExecEngine::bin_table_bytes() const {
  if (quant_ == nullptr) return 0;
  return quant_->cuts.size() * sizeof(double) +
         quant_->cut_offsets.size() * sizeof(uint32_t);
}

std::span<const double> ExecEngine::QuantizedCuts(int feature) const {
  if (quant_ == nullptr || feature < 0 || feature >= num_features_) return {};
  const size_t f = static_cast<size_t>(feature);
  const uint32_t lo = quant_->cut_offsets[f];
  const uint32_t hi = quant_->cut_offsets[f + 1];
  return {quant_->cuts.data() + lo, hi - lo};
}

// First index i with x < cuts[i]; `count` when there is none. NaN compares
// false against every cut, so it maps to `count` — past every stored rank —
// and therefore descends right at every node, exactly like the f64 walk.
static uint16_t BinOf(const double* cuts, uint32_t count, double x) {
  uint32_t lo = 0;
  while (count > 0) {
    const uint32_t half = count / 2;
    if (!(x < cuts[lo + half])) {
      lo += half + 1;
      count -= half + 1;
    } else {
      count = half;
    }
  }
  return static_cast<uint16_t>(lo);
}

uint16_t ExecEngine::QuantizeValue(int feature, double x) const {
  const std::span<const double> cuts = QuantizedCuts(feature);
  return BinOf(cuts.data(), static_cast<uint32_t>(cuts.size()), x);
}

void ExecEngine::AddTree(const DecisionTree& tree) {
  const std::span<const DecisionTree::Node> nodes = tree.nodes();
  if (nodes.empty()) throw std::invalid_argument("ExecEngine: empty tree");
  const size_t k = static_cast<size_t>(num_classes_);

  tree_node_base_.push_back(static_cast<uint32_t>(feature_idx_.size()));
  tree_leaf_base_.push_back(static_cast<uint32_t>(
      family_ == Family::kAveragedForest ? leaf_probs_.size() / k
                                         : leaf_values_.size()));

  // Pass 1: assign every node its link. Internal nodes take pool slots in
  // node order; leaves copy their payload into the engine table and encode
  // the payload index as its bitwise complement.
  std::vector<int32_t> remap(nodes.size());
  int32_t next_internal = static_cast<int32_t>(feature_idx_.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const DecisionTree::Node& node = nodes[i];
    if (node.feature >= 0) {
      remap[i] = next_internal++;
      continue;
    }
    int32_t payload;
    if (family_ == Family::kAveragedForest) {
      payload = static_cast<int32_t>(leaf_probs_.size() / k);
      const std::span<const float> probs = tree.leaf_probs();
      size_t src = static_cast<size_t>(node.payload) * k;
      leaf_probs_.insert(leaf_probs_.end(), probs.begin() + src,
                         probs.begin() + src + k);
    } else {
      payload = static_cast<int32_t>(leaf_values_.size());
      leaf_values_.push_back(tree.leaf_values()[static_cast<size_t>(node.payload)]);
    }
    remap[i] = ~payload;
  }

  // Pass 2: emit internal nodes into the SoA pool, children remapped and
  // packed as {left: low 32, right: high 32}.
  for (const DecisionTree::Node& node : nodes) {
    if (node.feature < 0) continue;
    feature_idx_.push_back(node.feature);
    threshold_.push_back(node.threshold);
    const uint32_t left =
        static_cast<uint32_t>(remap[static_cast<size_t>(node.left)]);
    const uint32_t right =
        static_cast<uint32_t>(remap[static_cast<size_t>(node.right)]);
    child_pair_.push_back(static_cast<int64_t>(
        static_cast<uint64_t>(left) | (static_cast<uint64_t>(right) << 32)));
  }
  root_link_.push_back(remap[0]);
  // depth() counts nodes on the longest root-to-leaf path; a lane descending
  // from the root reaches its leaf in at most depth() - 1 comparisons.
  tree_depth_.push_back(static_cast<int32_t>(tree.depth()) - 1);
}

void ExecEngine::BuildQuantized() {
  const size_t trees = root_link_.size();
  const size_t nodes = feature_idx_.size();
  const size_t nf = static_cast<size_t>(num_features_);
  if (nf > kMaxQuantFeatures || trees > kMaxQuantTrees) return;
  if (family_ == Family::kAveragedForest &&
      static_cast<size_t>(num_classes_) > kMaxQuantClasses) {
    return;
  }
  // Per-tree node/leaf spans must fit the 15-bit relative links.
  const size_t total_leaves = leaf_payload_count();
  for (size_t t = 0; t < trees; ++t) {
    const size_t node_end = t + 1 < trees ? tree_node_base_[t + 1] : nodes;
    const size_t leaf_end = t + 1 < trees ? tree_leaf_base_[t + 1] : total_leaves;
    if (node_end - tree_node_base_[t] > kMaxQuantTreeNodes) return;
    if (leaf_end - tree_leaf_base_[t] > kMaxQuantTreeLeaves) return;
  }

  auto q = std::make_unique<Quantized>();

  // Per-feature sorted distinct training-observed thresholds.
  std::vector<std::vector<double>> per_feature(nf);
  for (size_t i = 0; i < nodes; ++i) {
    per_feature[static_cast<size_t>(feature_idx_[i])].push_back(threshold_[i]);
  }
  q->cut_offsets.reserve(nf + 1);
  q->cut_offsets.push_back(0);
  for (size_t f = 0; f < nf; ++f) {
    std::vector<double>& cuts = per_feature[f];
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    if (cuts.size() > kMaxQuantCuts) return;
    q->cuts.insert(q->cuts.end(), cuts.begin(), cuts.end());
    q->cut_offsets.push_back(static_cast<uint32_t>(q->cuts.size()));
  }

  // Shrunken node pool, same node order as the f64 pool. A node's threshold
  // becomes rank+1 of its cut so the walk's `bin < rank+1` test equals
  // `x < threshold` exactly (see QuantizeValue).
  q->feature.resize(nodes);
  q->threshold.resize(nodes);
  q->left.resize(nodes);
  q->right.resize(nodes);
  size_t t = 0;
  for (size_t i = 0; i < nodes; ++i) {
    while (t + 1 < trees && i >= tree_node_base_[t + 1]) ++t;
    const size_t f = static_cast<size_t>(feature_idx_[i]);
    q->feature[i] = static_cast<uint16_t>(f);
    const double* cuts = q->cuts.data() + q->cut_offsets[f];
    const uint32_t count = q->cut_offsets[f + 1] - q->cut_offsets[f];
    const double* pos = std::lower_bound(cuts, cuts + count, threshold_[i]);
    q->threshold[i] = static_cast<uint16_t>((pos - cuts) + 1);
    auto encode = [&](int32_t link) -> uint16_t {
      if (link >= 0) {
        return static_cast<uint16_t>(static_cast<uint32_t>(link) -
                                     tree_node_base_[t]);
      }
      return static_cast<uint16_t>(
          Quantized::kLeafBit |
          (static_cast<uint32_t>(~link) - tree_leaf_base_[t]));
    };
    const uint64_t pair = static_cast<uint64_t>(child_pair_[i]);
    q->left[i] = encode(static_cast<int32_t>(pair));
    q->right[i] = encode(static_cast<int32_t>(pair >> 32));
  }

  // Quantized leaf tables: 1/65535 fixed point for forest probabilities
  // (accumulated in u32, exact up to the per-leaf rounding), f32 for boosted
  // leaf values.
  if (family_ == Family::kAveragedForest) {
    q->leaf_probs.resize(leaf_probs_.size());
    for (size_t i = 0; i < leaf_probs_.size(); ++i) {
      const double p = std::clamp(static_cast<double>(leaf_probs_[i]), 0.0, 1.0);
      q->leaf_probs[i] = static_cast<uint16_t>(std::lround(p * 65535.0));
    }
  } else {
    q->leaf_values.assign(leaf_values_.begin(), leaf_values_.end());
  }
  quant_ = std::move(q);
}

ExecEngine ExecEngine::Compile(const RandomForest& forest) {
  ExecEngine engine;
  engine.family_ = Family::kAveragedForest;
  engine.num_classes_ = forest.num_classes();
  engine.num_features_ = forest.num_features();
  if (engine.num_classes_ <= 0) {
    throw std::invalid_argument("ExecEngine: forest without classes");
  }
  for (size_t t = 0; t < forest.tree_count(); ++t) {
    const DecisionTree& tree = forest.tree(t);
    if (tree.num_classes() != engine.num_classes_) {
      throw std::invalid_argument("ExecEngine: tree class count disagrees with forest");
    }
    engine.AddTree(tree);
  }
  engine.BuildQuantized();
  return engine;
}

ExecEngine ExecEngine::Compile(const GradientBoostedTrees& gbt) {
  ExecEngine engine;
  engine.family_ = Family::kBoosted;
  engine.num_classes_ = gbt.num_classes();
  engine.num_features_ = gbt.num_features();
  engine.learning_rate_ = gbt.learning_rate();
  engine.base_score_.assign(gbt.base_score().begin(), gbt.base_score().end());
  if (engine.num_classes_ < 2) {
    throw std::invalid_argument("ExecEngine: boosted model needs >= 2 classes");
  }
  for (size_t t = 0; t < gbt.tree_count(); ++t) {
    const DecisionTree& tree = gbt.tree(t);
    if (tree.is_classifier()) {
      throw std::invalid_argument("ExecEngine: boosted tree is not a regression tree");
    }
    engine.AddTree(tree);
  }
  engine.BuildQuantized();
  return engine;
}

std::shared_ptr<const ExecEngine> ExecEngine::TryCompile(const Classifier& model) {
  if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    return std::make_shared<const ExecEngine>(Compile(*forest));
  }
  if (const auto* gbt = dynamic_cast<const GradientBoostedTrees*>(&model)) {
    return std::make_shared<const ExecEngine>(Compile(*gbt));
  }
  return nullptr;
}

void ExecEngine::WalkLane(int32_t root, int32_t rounds, const double* X, size_t stride,
                          size_t m, int32_t* payload) const {
  if (root < 0) {
    for (size_t j = 0; j < m; ++j) payload[j] = ~root;
    return;
  }
  int32_t link[kWalkLanes];
  for (size_t j = 0; j < m; ++j) link[j] = root;
  // Fixed round count (the tree's depth), each round stepping every lane
  // once through the shared branchless step. The per-lane loads are
  // independent across lanes, so a cache miss in one descent overlaps with
  // the others instead of stalling the whole batch (the single-example Walk
  // is one serial dependent-load chain), and the loop needs no "any lane
  // still descending?" check between rounds.
  for (int32_t r = 0; r < rounds; ++r) {
    for (size_t j = 0; j < m; ++j) {
      link[j] = StepBranchless(link[j], X + j * stride);
    }
  }
  for (size_t j = 0; j < m; ++j) payload[j] = ~link[j];
}

void ExecEngine::WalkBlock(bool avx2, int32_t root, int32_t rounds, const double* X,
                           size_t stride, size_t m, int32_t* payload) const {
  if (avx2 && root >= 0) {
    if (m == kSimdBlock) {
      internal::WalkLanes32Avx2(
          {feature_idx_.data(), threshold_.data(), child_pair_.data()}, root,
          rounds, X, stride, payload);
      return;
    }
    if (m >= kWalkLanes) {
      internal::WalkLanes16Avx2(
          {feature_idx_.data(), threshold_.data(), child_pair_.data()}, root,
          rounds, X, stride, payload);
      WalkLane(root, rounds, X + kWalkLanes * stride, stride, m - kWalkLanes,
               payload + kWalkLanes);
      return;
    }
  }
  for (size_t j0 = 0; j0 < m; j0 += kWalkLanes) {
    WalkLane(root, rounds, X + j0 * stride, stride,
             std::min(kWalkLanes, m - j0), payload + j0);
  }
}

void ExecEngine::PredictBatch(const double* X, size_t n, size_t stride,
                              double* proba_out, Mode mode) const {
  const size_t k = static_cast<size_t>(num_classes_);
  if (n == 0) return;
  const Mode resolved = Resolve(mode);
  if (resolved == Mode::kQuantized) {
    PredictBatchQuantized(X, n, stride, proba_out);
    return;
  }
  const bool avx2 = resolved == Mode::kAvx2 && stride <= kMaxSimdStride;

  // All families walk tree-major (outer loop over trees, lanes of examples
  // in lockstep inside): a tree's slice of the pool stays hot across the
  // whole batch, and each example still accumulates its leaf values in
  // increasing tree order — bit-identical to the legacy traversal. The AVX2
  // kernels only change how full 32- and 16-row blocks find their leaves;
  // partial tails share the scalar branchless step, and the accumulation
  // below is identical either way, which is why kScalar and kAvx2 are
  // bit-exact.
  int32_t payload[kSimdBlock];

  if (family_ == Family::kAveragedForest) {
    std::fill(proba_out, proba_out + n * k, 0.0);
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      for (size_t i0 = 0; i0 < n; i0 += kSimdBlock) {
        const size_t m = std::min(kSimdBlock, n - i0);
        WalkBlock(avx2, root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          const float* probs =
              leaf_probs_.data() + static_cast<size_t>(payload[j]) * k;
          double* acc = proba_out + (i0 + j) * k;
          for (size_t c = 0; c < k; ++c) acc[c] += probs[c];
        }
      }
    }
    // Same normalization as the legacy traversal (0 for an empty ensemble).
    const double inv =
        root_link_.empty() ? 0.0 : 1.0 / static_cast<double>(root_link_.size());
    for (size_t i = 0; i < n * k; ++i) proba_out[i] *= inv;
    return;
  }

  // Boosted: accumulate logits directly in proba_out (no scratch), exactly
  // mirroring the legacy per-example accumulation order over trees.
  const bool binary = (num_classes_ == 2);
  if (binary) {
    // Row layout during accumulation: slot 1 holds the single logit.
    for (size_t i = 0; i < n; ++i) proba_out[i * 2 + 1] = base_score_[0];
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      for (size_t i0 = 0; i0 < n; i0 += kSimdBlock) {
        const size_t m = std::min(kSimdBlock, n - i0);
        WalkBlock(avx2, root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * 2 + 1] +=
              learning_rate_ * leaf_values_[static_cast<size_t>(payload[j])];
        }
      }
    }
  } else {
    for (size_t i = 0; i < n; ++i) {
      std::copy(base_score_.begin(), base_score_.end(), proba_out + i * k);
    }
    for (size_t t = 0; t < root_link_.size(); ++t) {
      const int32_t root = root_link_[t];
      const int32_t rounds = tree_depth_[t];
      const size_t cls = t % k;
      for (size_t i0 = 0; i0 < n; i0 += kSimdBlock) {
        const size_t m = std::min(kSimdBlock, n - i0);
        WalkBlock(avx2, root, rounds, X + i0 * stride, stride, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * k + cls] +=
              learning_rate_ * leaf_values_[static_cast<size_t>(payload[j])];
        }
      }
    }
  }
  FinalizeRows(n, proba_out);
}

void ExecEngine::BinBlock(const double* X, size_t m, size_t stride,
                          uint16_t* bins) const {
  const Quantized& q = *quant_;
  const size_t nf = static_cast<size_t>(num_features_);
  for (size_t j = 0; j < m; ++j) {
    const double* row = X + j * stride;
    uint16_t* b = bins + j * nf;
    for (size_t f = 0; f < nf; ++f) {
      const uint32_t lo = q.cut_offsets[f];
      b[f] = BinOf(q.cuts.data() + lo, q.cut_offsets[f + 1] - lo, row[f]);
    }
  }
}

void ExecEngine::WalkLaneQuantized(size_t t, const uint16_t* bins, size_t m,
                                   int32_t* payload) const {
  const int32_t root = root_link_[t];
  if (root < 0) {
    for (size_t j = 0; j < m; ++j) payload[j] = ~root;
    return;
  }
  const Quantized& q = *quant_;
  const uint32_t node_base = tree_node_base_[t];
  const uint32_t leaf_base = tree_leaf_base_[t];
  const int32_t rounds = tree_depth_[t];
  const uint16_t* feat = q.feature.data();
  const uint16_t* thr = q.threshold.data();
  const uint16_t* left = q.left.data();
  const uint16_t* right = q.right.data();
  const size_t nf = static_cast<size_t>(num_features_);
  // Tree-relative links; kLeafBit plays the sign bit's terminator role. The
  // tree's root is always its first pool slot (AddTree assigns internal
  // slots in node order and node 0 is the root), so every lane starts at
  // relative link 0. Same branchless mask-select shape as StepBranchless.
  uint32_t link[kWalkLanes];
  for (size_t j = 0; j < m; ++j) link[j] = 0;
  for (int32_t r = 0; r < rounds; ++r) {
    for (size_t j = 0; j < m; ++j) {
      const uint32_t l = link[j];
      const uint32_t done =
          static_cast<uint32_t>(-static_cast<int32_t>(l >> 15));
      const size_t u = node_base + ((l & 0x7FFFu) & ~done);
      const uint32_t go_left = static_cast<uint32_t>(
          -static_cast<int32_t>(bins[j * nf + feat[u]] < thr[u]));
      const uint32_t next = (left[u] & go_left) | (right[u] & ~go_left);
      link[j] = (l & done) | (next & ~done);
    }
  }
  for (size_t j = 0; j < m; ++j) {
    payload[j] = static_cast<int32_t>(leaf_base + (link[j] & 0x7FFFu));
  }
}

void ExecEngine::PredictBatchQuantized(const double* X, size_t n, size_t stride,
                                       double* proba_out) const {
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t trees = root_link_.size();
  const Quantized& q = *quant_;
  // Block-major (16 rows binned once, then every tree walked over the
  // block) instead of the exact walk's tree-major order: the shrunken pool
  // is L2-resident at Table-1 sizes, so re-touching every tree per block is
  // cheap, and each row's feature vector is binned exactly once. Per-row
  // accumulation order over trees is unchanged, so outputs differ from the
  // exact walk only by the leaf-table quantization.
  uint16_t bins[kWalkLanes * kMaxQuantFeatures];  // 16 KiB stack
  int32_t payload[kWalkLanes];

  if (family_ == Family::kAveragedForest) {
    // u32 fixed-point accumulator: trees * 65535 < 2^32 by kMaxQuantTrees.
    uint32_t acc[kWalkLanes * kMaxQuantClasses];
    const double inv =
        trees == 0 ? 0.0 : 1.0 / (65535.0 * static_cast<double>(trees));
    for (size_t i0 = 0; i0 < n; i0 += kWalkLanes) {
      const size_t m = std::min(kWalkLanes, n - i0);
      BinBlock(X + i0 * stride, m, stride, bins);
      std::fill(acc, acc + m * k, 0u);
      for (size_t t = 0; t < trees; ++t) {
        WalkLaneQuantized(t, bins, m, payload);
        for (size_t j = 0; j < m; ++j) {
          const uint16_t* probs =
              q.leaf_probs.data() + static_cast<size_t>(payload[j]) * k;
          uint32_t* a = acc + j * k;
          for (size_t c = 0; c < k; ++c) a[c] += probs[c];
        }
      }
      for (size_t j = 0; j < m; ++j) {
        double* out = proba_out + (i0 + j) * k;
        for (size_t c = 0; c < k; ++c) {
          out[c] = static_cast<double>(acc[j * k + c]) * inv;
        }
      }
    }
    return;
  }

  const bool binary = (num_classes_ == 2);
  for (size_t i0 = 0; i0 < n; i0 += kWalkLanes) {
    const size_t m = std::min(kWalkLanes, n - i0);
    BinBlock(X + i0 * stride, m, stride, bins);
    if (binary) {
      for (size_t j = 0; j < m; ++j) proba_out[(i0 + j) * 2 + 1] = base_score_[0];
      for (size_t t = 0; t < trees; ++t) {
        WalkLaneQuantized(t, bins, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * 2 + 1] +=
              learning_rate_ *
              static_cast<double>(q.leaf_values[static_cast<size_t>(payload[j])]);
        }
      }
    } else {
      for (size_t j = 0; j < m; ++j) {
        std::copy(base_score_.begin(), base_score_.end(),
                  proba_out + (i0 + j) * k);
      }
      for (size_t t = 0; t < trees; ++t) {
        const size_t cls = t % k;
        WalkLaneQuantized(t, bins, m, payload);
        for (size_t j = 0; j < m; ++j) {
          proba_out[(i0 + j) * k + cls] +=
              learning_rate_ *
              static_cast<double>(q.leaf_values[static_cast<size_t>(payload[j])]);
        }
      }
    }
  }
  FinalizeRows(n, proba_out);
}

void ExecEngine::FinalizeRows(size_t n, double* proba_out) const {
  const size_t k = static_cast<size_t>(num_classes_);
  if (num_classes_ == 2) {
    for (size_t i = 0; i < n; ++i) {
      const double p1 = Sigmoid(proba_out[i * 2 + 1]);
      proba_out[i * 2] = 1.0 - p1;
      proba_out[i * 2 + 1] = p1;
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    std::span<double> row(proba_out + i * k, k);
    Softmax(row, row);  // element-wise in place; see link_functions.h
  }
}

void ExecEngine::PredictInto(std::span<const double> x,
                             std::span<double> proba_out, Mode mode) const {
  PredictBatch(x.data(), 1, x.size(), proba_out.data(), mode);
}

Classifier::Scored ExecEngine::PredictScored(std::span<const double> x,
                                             std::span<double> scratch,
                                             Mode mode) const {
  PredictInto(x, scratch, mode);
  int best = 0;
  for (int c = 1; c < num_classes_; ++c) {
    if (scratch[static_cast<size_t>(c)] > scratch[static_cast<size_t>(best)]) best = c;
  }
  return Classifier::Scored{best, scratch[static_cast<size_t>(best)]};
}

}  // namespace rc::ml
