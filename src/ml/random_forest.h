// Random Forest classifier: bagged Gini CART trees with per-node feature
// subsampling. The paper uses Random Forests for the two CPU-utilization
// metrics (Table 1).
#ifndef RC_SRC_ML_RANDOM_FOREST_H_
#define RC_SRC_ML_RANDOM_FOREST_H_

#include <memory>
#include <span>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/dataset.h"
#include "src/ml/tree.h"

namespace rc::ml {

struct RandomForestConfig {
  int num_trees = 48;
  TreeConfig tree = {.max_depth = 14, .min_samples_leaf = 4};
  // Bootstrap sample size as a fraction of the training set (with
  // replacement).
  double bagging_fraction = 1.0;
  // Per-node feature subsample; 0 means sqrt(num_features).
  int max_features = 0;
  uint64_t seed = 1;
  int num_threads = 0;  // 0 = hardware concurrency (capped)
  int max_bins = 64;
};

class RandomForest final : public Classifier {
 public:
  static RandomForest Fit(const Dataset& data, const RandomForestConfig& config);

  int num_classes() const override { return num_classes_; }
  int num_features() const override { return num_features_; }
  // Prediction entry points delegate to the compiled ExecEngine (built at
  // the end of Fit/Deserialize, so the load path pays for compilation and
  // the prediction path never does).
  std::vector<double> PredictProba(std::span<const double> x) const override;
  void PredictInto(std::span<const double> x, std::span<double> out) const override;
  void PredictBatch(const double* X, size_t n, size_t stride,
                    double* proba_out) const override;
  const ExecEngine* engine() const override { return engine_.get(); }
  // The original per-tree AoS traversal, kept for the bit-exactness parity
  // suite (tests/ml/exec_engine_test.cc) — not a hot path.
  std::vector<double> PredictProbaLegacy(std::span<const double> x) const;

  std::vector<double> FeatureImportance() const override;

  size_t tree_count() const { return trees_.size(); }
  const DecisionTree& tree(size_t i) const { return trees_[i]; }

  const char* type_name() const override { return "random_forest"; }
  void Serialize(ByteWriter& w) const override;
  static RandomForest Deserialize(ByteReader& r);

 private:
  void CompileEngine();

  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
  int num_features_ = 0;
  // Shared (not unique) so the forest stays copyable; the engine itself is
  // immutable and safe to share across copies and threads.
  std::shared_ptr<const ExecEngine> engine_;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_RANDOM_FOREST_H_
