// The AVX2 walk kernel for ExecEngine — the only translation unit in the
// repo built with -mavx2 -mfma (see exec_engine_simd.h for why). Guarded so
// the same file compiles to stubs when RC_ENABLE_AVX2 is off or the target
// ISA is not x86_64.
#include "src/ml/exec_engine_simd.h"

#if defined(RC_EXEC_ENGINE_AVX2_TU) && defined(__AVX2__)

#include <immintrin.h>

// GCC's gather intrinsics seed the unmasked destination with
// _mm256_undefined_pd(), which -Wall misreads as a real uninitialized use.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace rc::ml::internal {

bool CompiledWithAvx2() { return true; }

namespace {

// Shared per-round state for the 8-wide descent step: pool pointers plus the
// in-group row offsets and the mask-repack permutation. The packed child
// pairs are addressed as their 32-bit halves — left links at even dwords,
// right at odd (exec_engine.h) — because full-width vpgatherdd at scale 8
// fetches 8 lanes' worth of each half in one instruction, and a 64-bit pair
// gather (vpgatherdq), though one instruction fewer, measures ~2x slower
// than vpgatherdd on the targeted parts.
struct StepCtx {
  const int32_t* feat;
  const double* thr;
  const int* pair_lo;
  const int* pair_hi;
  __m128i row_off;     // {0, s, 2s, 3s}
  __m256i fix_order;   // see Step8
};

// One descent round for one 8-lane chain; rows j..j+3 are based at `b0`,
// rows j+4..j+7 at `b1`, both using the same {0,s,2s,3s} offsets so the row
// index arithmetic stays within the int32 gather-index guard. Node indices,
// feature indices, child links, and the descend masks are 8 x i32 in one
// ymm; only the f64 threshold/input gathers and the compare split into
// lo/hi 4-wide halves (a ymm holds 4 doubles). Per 8 lanes that is 7
// gathers — feat, thr lo/hi, x lo/hi, left, right — versus 10 for
// four-lane groups, and the i32 bookkeeping (done/select/blend) runs once
// per 8 lanes instead of twice.
//
// A lane already at a leaf (negative link) has all-ones in `done`: it
// harmlessly re-reads node 0 and keeps its link through the final blend,
// exactly as in the scalar branchless step. _CMP_LT_OQ is ordered
// non-signaling less-than — false on NaN in either operand, matching the
// scalar `x < threshold` descend rule.
inline __attribute__((always_inline)) __m256i Step8(const StepCtx& c, __m256i l,
                                                    const double* b0,
                                                    const double* b1) {
  const __m256i done = _mm256_srai_epi32(l, 31);
  const __m256i u8 = _mm256_andnot_si256(done, l);  // l & ~done
  const __m128i u_lo = _mm256_castsi256_si128(u8);
  const __m128i u_hi = _mm256_extracti128_si256(u8, 1);
  const __m256i f8 = _mm256_i32gather_epi32(c.feat, u8, 4);
  const __m256d t_lo = _mm256_i32gather_pd(c.thr, u_lo, 8);
  const __m256d t_hi = _mm256_i32gather_pd(c.thr, u_hi, 8);
  const __m128i xi_lo = _mm_add_epi32(c.row_off, _mm256_castsi256_si128(f8));
  const __m128i xi_hi =
      _mm_add_epi32(c.row_off, _mm256_extracti128_si256(f8, 1));
  const __m256d xv_lo = _mm256_i32gather_pd(b0, xi_lo, 8);
  const __m256d xv_hi = _mm256_i32gather_pd(b1, xi_hi, 8);
  const __m256d lt_lo = _mm256_cmp_pd(xv_lo, t_lo, _CMP_LT_OQ);
  const __m256d lt_hi = _mm256_cmp_pd(xv_hi, t_hi, _CMP_LT_OQ);
  // The 64-bit compare masks are all-ones/all-zeros per lane, so their low
  // dwords ARE the 32-bit masks: shuffle_ps picks them out as
  // {m0,m1,m4,m5, m2,m3,m6,m7} and fix_order restores lane order.
  const __m256 packed = _mm256_shuffle_ps(_mm256_castpd_ps(lt_lo),
                                          _mm256_castpd_ps(lt_hi),
                                          _MM_SHUFFLE(2, 0, 2, 0));
  const __m256i go_left =
      _mm256_permutevar8x32_epi32(_mm256_castps_si256(packed), c.fix_order);
  const __m256i l8 = _mm256_i32gather_epi32(c.pair_lo, u8, 8);
  const __m256i r8 = _mm256_i32gather_epi32(c.pair_hi, u8, 8);
  const __m256i next = _mm256_blendv_epi8(r8, l8, go_left);
  return _mm256_blendv_epi8(next, l, done);
}

inline StepCtx MakeCtx(const NodePoolView& pool, size_t stride) {
  const int32_t s = static_cast<int32_t>(stride);
  return StepCtx{pool.feature_idx, pool.threshold,
                 reinterpret_cast<const int*>(pool.child_pair),
                 reinterpret_cast<const int*>(pool.child_pair) + 1,
                 _mm_setr_epi32(0, s, 2 * s, 3 * s),
                 _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7)};
}

}  // namespace

// NOTE (both kernels): the chains' links live in named registers, not an
// array — with an array GCC keeps the state on the stack, and the per-round
// load/store round-trip through memory roughly halves kernel throughput.

void WalkLanes16Avx2(const NodePoolView& pool, int32_t root, int32_t rounds,
                     const double* X, size_t stride, int32_t* payload) {
  const StepCtx c = MakeCtx(pool, stride);
  __m256i link0 = _mm256_set1_epi32(root);
  __m256i link1 = link0;
  const double* base1 = X + 4 * stride;
  const double* base2 = X + 8 * stride;
  const double* base3 = X + 12 * stride;
  for (int32_t r = 0; r < rounds; ++r) {
    link0 = Step8(c, link0, X, base1);
    link1 = Step8(c, link1, base2, base3);
  }
  // After `rounds` rounds every lane is at a leaf: payload = ~link.
  const __m256i all_ones = _mm256_set1_epi32(-1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload),
                      _mm256_xor_si256(link0, all_ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload + 8),
                      _mm256_xor_si256(link1, all_ones));
}

void WalkLanes32Avx2(const NodePoolView& pool, int32_t root, int32_t rounds,
                     const double* X, size_t stride, int32_t* payload) {
  const StepCtx c = MakeCtx(pool, stride);
  __m256i link0 = _mm256_set1_epi32(root);
  __m256i link1 = link0, link2 = link0, link3 = link0;
  const double* b1 = X + 4 * stride;
  const double* b2 = X + 8 * stride;
  const double* b3 = X + 12 * stride;
  const double* b4 = X + 16 * stride;
  const double* b5 = X + 20 * stride;
  const double* b6 = X + 24 * stride;
  const double* b7 = X + 28 * stride;
  for (int32_t r = 0; r < rounds; ++r) {
    link0 = Step8(c, link0, X, b1);
    link1 = Step8(c, link1, b2, b3);
    link2 = Step8(c, link2, b4, b5);
    link3 = Step8(c, link3, b6, b7);
  }
  const __m256i all_ones = _mm256_set1_epi32(-1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload),
                      _mm256_xor_si256(link0, all_ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload + 8),
                      _mm256_xor_si256(link1, all_ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload + 16),
                      _mm256_xor_si256(link2, all_ones));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(payload + 24),
                      _mm256_xor_si256(link3, all_ones));
}

}  // namespace rc::ml::internal

#else  // stub build: RC_ENABLE_AVX2 off, or not an x86_64 AVX2 TU

#include <cstdlib>

namespace rc::ml::internal {

bool CompiledWithAvx2() { return false; }

// ExecEngine resolves kAvx2 to kScalar when CompiledWithAvx2() is false;
// reaching a stub means the dispatch contract was broken.
void WalkLanes16Avx2(const NodePoolView&, int32_t, int32_t, const double*,
                     size_t, int32_t*) {
  std::abort();
}

void WalkLanes32Avx2(const NodePoolView&, int32_t, int32_t, const double*,
                     size_t, int32_t*) {
  std::abort();
}

}  // namespace rc::ml::internal

#endif
