// Radix-2 iterative FFT plus the spectral helpers used by the workload-class
// detector (paper Section 3.6: find diurnal periodicity in the average-CPU
// time series with the FFT).
#ifndef RC_SRC_ML_FFT_H_
#define RC_SRC_ML_FFT_H_

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace rc::ml {

// In-place FFT; `a.size()` must be a power of two. `inverse` applies the
// 1/N-scaled inverse transform.
void Fft(std::vector<std::complex<double>>& a, bool inverse = false);

// Smallest power of two >= n (n >= 1).
size_t NextPow2(size_t n);

// One-sided power spectrum of a real signal: mean-removed, optionally
// Hann-windowed, zero-padded to a power of two. Entry k is |X_k|^2 for
// k = 0..N/2; the DC term is ~0 after mean removal.
std::vector<double> PowerSpectrum(std::span<const double> signal, bool hann_window = true);

// Frequency (cycles per sample) of spectrum bin k for an N-point transform.
inline double BinFrequency(size_t k, size_t n) {
  return static_cast<double>(k) / static_cast<double>(n);
}

}  // namespace rc::ml

#endif  // RC_SRC_ML_FFT_H_
