#include "src/ml/fft.h"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rc::ml {

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void Fft(std::vector<std::complex<double>>& a, bool inverse) {
  const size_t n = a.size();
  if (n == 0 || (n & (n - 1)) != 0) {
    throw std::invalid_argument("Fft: size must be a nonzero power of two");
  }
  // Bit-reversal permutation.
  for (size_t i = 1, j = 0; i < n; ++i) {
    size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (size_t len = 2; len <= n; len <<= 1) {
    double angle = 2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (size_t j = 0; j < len / 2; ++j) {
        std::complex<double> u = a[i + j];
        std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

std::vector<double> PowerSpectrum(std::span<const double> signal, bool hann_window) {
  if (signal.empty()) return {};
  const size_t n = signal.size();
  double mean = 0.0;
  for (double v : signal) mean += v;
  mean /= static_cast<double>(n);

  size_t padded = NextPow2(n);
  std::vector<std::complex<double>> a(padded, {0.0, 0.0});
  for (size_t i = 0; i < n; ++i) {
    double w = 1.0;
    if (hann_window) {
      w = 0.5 * (1.0 - std::cos(2.0 * std::numbers::pi * static_cast<double>(i) /
                                static_cast<double>(n - 1 == 0 ? 1 : n - 1)));
    }
    a[i] = {(signal[i] - mean) * w, 0.0};
  }
  Fft(a);
  std::vector<double> power(padded / 2 + 1);
  for (size_t k = 0; k < power.size(); ++k) power[k] = std::norm(a[k]);
  return power;
}

}  // namespace rc::ml
