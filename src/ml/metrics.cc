#include "src/ml/metrics.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rc::ml {

ConfusionMatrix::ConfusionMatrix(int num_classes) : k_(num_classes) {
  if (num_classes < 2) throw std::invalid_argument("ConfusionMatrix: need >= 2 classes");
  m_.assign(static_cast<size_t>(k_) * static_cast<size_t>(k_), 0);
}

void ConfusionMatrix::Add(int true_label, int predicted_label) {
  if (true_label < 0 || true_label >= k_ || predicted_label < 0 || predicted_label >= k_) {
    throw std::out_of_range("ConfusionMatrix::Add: label out of range");
  }
  m_[static_cast<size_t>(true_label) * static_cast<size_t>(k_) +
     static_cast<size_t>(predicted_label)] += 1;
  ++total_;
}

int64_t ConfusionMatrix::count(int true_label, int predicted_label) const {
  return m_[static_cast<size_t>(true_label) * static_cast<size_t>(k_) +
            static_cast<size_t>(predicted_label)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0.0;
  int64_t correct = 0;
  for (int c = 0; c < k_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

double ConfusionMatrix::Prevalence(int c) const {
  if (total_ == 0) return 0.0;
  int64_t actual = 0;
  for (int p = 0; p < k_; ++p) actual += count(c, p);
  return static_cast<double>(actual) / static_cast<double>(total_);
}

double ConfusionMatrix::Precision(int c) const {
  int64_t predicted = 0;
  for (int t = 0; t < k_; ++t) predicted += count(t, c);
  if (predicted == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(predicted);
}

double ConfusionMatrix::Recall(int c) const {
  int64_t actual = 0;
  for (int p = 0; p < k_; ++p) actual += count(c, p);
  if (actual == 0) return 0.0;
  return static_cast<double>(count(c, c)) / static_cast<double>(actual);
}

void ThresholdedAccumulator::Add(int true_label, int predicted_label, double score) {
  ++total_;
  if (score < theta_) return;
  ++served_;
  if (true_label == predicted_label) ++correct_;
}

ThresholdedQuality ThresholdedAccumulator::Result() const {
  ThresholdedQuality q;
  q.total = total_;
  q.served = served_;
  q.precision = served_ > 0 ? static_cast<double>(correct_) / static_cast<double>(served_) : 0.0;
  q.coverage = total_ > 0 ? static_cast<double>(served_) / static_cast<double>(total_) : 0.0;
  return q;
}

double LogLoss(const std::vector<std::vector<double>>& probs, const std::vector<int>& labels) {
  if (probs.size() != labels.size() || probs.empty()) {
    throw std::invalid_argument("LogLoss: size mismatch or empty");
  }
  double loss = 0.0;
  for (size_t i = 0; i < probs.size(); ++i) {
    double p = probs[i][static_cast<size_t>(labels[i])];
    loss -= std::log(std::max(p, 1e-15));
  }
  return loss / static_cast<double>(probs.size());
}

}  // namespace rc::ml
