// Feature-matrix container for training and evaluation. Row-major doubles
// with named columns plus integer class labels. Categorical attributes are
// integer-encoded by the feature extraction layer (src/core/featurizer);
// trees split them as ordered values, which is standard practice for
// gradient-boosting implementations with moderate cardinality.
#ifndef RC_SRC_ML_DATASET_H_
#define RC_SRC_ML_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace rc::ml {

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> feature_names);

  size_t num_rows() const { return labels_.size(); }
  size_t num_features() const { return feature_names_.size(); }
  const std::vector<std::string>& feature_names() const { return feature_names_; }

  // Appends a row; `x.size()` must equal num_features().
  void AddRow(std::span<const double> x, int label);

  std::span<const double> Row(size_t i) const {
    return {values_.data() + i * num_features(), num_features()};
  }
  double Value(size_t row, size_t feature) const {
    return values_[row * num_features() + feature];
  }
  int Label(size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  // Number of distinct classes, assuming labels are 0..k-1.
  int NumClasses() const;

  void Reserve(size_t rows);

 private:
  std::vector<std::string> feature_names_;
  std::vector<double> values_;  // row-major
  std::vector<int> labels_;
};

// Equal-frequency (quantile) binning of features into at most `max_bins`
// bins per feature. Trees train on the binned representation (fast histogram
// splits) but store raw-value thresholds so inference works on raw features.
class FeatureBinner {
 public:
  // Learns bin boundaries from the data.
  static FeatureBinner Fit(const Dataset& data, int max_bins = 64);

  // Bin index of value v for feature f, in [0, NumBins(f)).
  int Bin(size_t f, double v) const;
  int NumBins(size_t f) const { return static_cast<int>(boundaries_[f].size()) + 1; }
  size_t num_features() const { return boundaries_.size(); }

  // Raw-value threshold for the split "bin <= b" on feature f: values go to
  // the left child iff raw value < SplitThreshold(f, b). Requires
  // b < NumBins(f) - 1 (the top bin has no right boundary).
  double SplitThreshold(size_t f, int b) const {
    return boundaries_[f][static_cast<size_t>(b)];
  }

  // Column-major binned matrix: entry (row, f) at [f * rows + row].
  std::vector<uint8_t> Transform(const Dataset& data) const;

 private:
  // boundaries_[f] is sorted; bin(v) = #(boundaries <= ... ) via upper_bound.
  std::vector<std::vector<double>> boundaries_;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_DATASET_H_
