#include "src/ml/classifier.h"

#include <stdexcept>

#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {

Classifier::Scored Classifier::PredictScored(std::span<const double> x) const {
  std::vector<double> probs = PredictProba(x);
  int best = 0;
  for (int c = 1; c < static_cast<int>(probs.size()); ++c) {
    if (probs[static_cast<size_t>(c)] > probs[static_cast<size_t>(best)]) best = c;
  }
  return Scored{best, probs[static_cast<size_t>(best)]};
}

std::vector<uint8_t> Classifier::SerializeTagged() const {
  ByteWriter w;
  w.String(type_name());
  Serialize(w);
  return w.TakeBytes();
}

std::unique_ptr<Classifier> Classifier::DeserializeTagged(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  std::string tag = r.String();
  if (tag == "random_forest") {
    return std::make_unique<RandomForest>(RandomForest::Deserialize(r));
  }
  if (tag == "gbt") {
    return std::make_unique<GradientBoostedTrees>(GradientBoostedTrees::Deserialize(r));
  }
  throw std::runtime_error("Classifier::DeserializeTagged: unknown type " + tag);
}

}  // namespace rc::ml
