#include "src/ml/classifier.h"

#include <algorithm>
#include <stdexcept>

#include "src/ml/gbt.h"
#include "src/ml/random_forest.h"

namespace rc::ml {

void Classifier::PredictInto(std::span<const double> x, std::span<double> out) const {
  std::vector<double> probs = PredictProba(x);
  std::copy(probs.begin(), probs.end(), out.begin());
}

void Classifier::PredictBatch(const double* X, size_t n, size_t stride,
                              double* proba_out) const {
  const size_t k = static_cast<size_t>(num_classes());
  for (size_t i = 0; i < n; ++i) {
    PredictInto({X + i * stride, static_cast<size_t>(num_features())},
                {proba_out + i * k, k});
  }
}

Classifier::Scored Classifier::PredictScored(std::span<const double> x) const {
  std::vector<double> probs(static_cast<size_t>(num_classes()));
  return PredictScored(x, probs);
}

Classifier::Scored Classifier::PredictScored(std::span<const double> x,
                                             std::span<double> scratch) const {
  PredictInto(x, scratch);
  int best = 0;
  for (int c = 1; c < num_classes(); ++c) {
    if (scratch[static_cast<size_t>(c)] > scratch[static_cast<size_t>(best)]) best = c;
  }
  return Scored{best, scratch[static_cast<size_t>(best)]};
}

std::vector<uint8_t> Classifier::SerializeTagged() const {
  ByteWriter w;
  w.String(type_name());
  Serialize(w);
  return w.TakeBytes();
}

std::unique_ptr<Classifier> Classifier::DeserializeTagged(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  std::string tag = r.String();
  if (tag == "random_forest") {
    return std::make_unique<RandomForest>(RandomForest::Deserialize(r));
  }
  if (tag == "gbt") {
    return std::make_unique<GradientBoostedTrees>(GradientBoostedTrees::Deserialize(r));
  }
  throw std::runtime_error("Classifier::DeserializeTagged: unknown type " + tag);
}

}  // namespace rc::ml
