#include "src/ml/dataset.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace rc::ml {

Dataset::Dataset(std::vector<std::string> feature_names)
    : feature_names_(std::move(feature_names)) {}

void Dataset::AddRow(std::span<const double> x, int label) {
  if (x.size() != num_features()) {
    throw std::invalid_argument("Dataset::AddRow: wrong feature count");
  }
  for (double v : x) {
    if (std::isnan(v)) {
      throw std::invalid_argument("Dataset::AddRow: NaN feature (impute upstream)");
    }
  }
  values_.insert(values_.end(), x.begin(), x.end());
  labels_.push_back(label);
}

int Dataset::NumClasses() const {
  int k = 0;
  for (int label : labels_) k = std::max(k, label + 1);
  return k;
}

void Dataset::Reserve(size_t rows) {
  values_.reserve(rows * num_features());
  labels_.reserve(rows);
}

FeatureBinner FeatureBinner::Fit(const Dataset& data, int max_bins) {
  if (max_bins < 2 || max_bins > 256) {
    throw std::invalid_argument("FeatureBinner: max_bins must be in [2, 256]");
  }
  FeatureBinner binner;
  binner.boundaries_.resize(data.num_features());
  std::vector<double> col(data.num_rows());
  for (size_t f = 0; f < data.num_features(); ++f) {
    for (size_t i = 0; i < data.num_rows(); ++i) col[i] = data.Value(i, f);
    std::sort(col.begin(), col.end());
    auto& bounds = binner.boundaries_[f];
    if (col.empty()) continue;
    // Candidate boundaries at equal-frequency quantiles; deduplicate so
    // low-cardinality (categorical) features get one bin per value. A
    // boundary equal to the minimum would leave bin 0 empty (bin b holds
    // values in [bounds[b-1], bounds[b])), so such candidates are skipped;
    // a boundary equal to the maximum is fine (the max gets its own bin).
    for (int b = 1; b < max_bins; ++b) {
      size_t idx = col.size() * static_cast<size_t>(b) / static_cast<size_t>(max_bins);
      if (idx >= col.size()) break;
      double v = col[idx];
      if (v > col.front() && (bounds.empty() || v > bounds.back())) bounds.push_back(v);
    }
  }
  return binner;
}

int FeatureBinner::Bin(size_t f, double v) const {
  const auto& bounds = boundaries_[f];
  return static_cast<int>(std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

std::vector<uint8_t> FeatureBinner::Transform(const Dataset& data) const {
  std::vector<uint8_t> out(data.num_rows() * data.num_features());
  for (size_t f = 0; f < data.num_features(); ++f) {
    uint8_t* col = out.data() + f * data.num_rows();
    for (size_t i = 0; i < data.num_rows(); ++i) {
      col[i] = static_cast<uint8_t>(Bin(f, data.Value(i, f)));
    }
  }
  return out;
}

}  // namespace rc::ml
