// Little-endian framed binary serialization used for ML models and feature
// data. Model bytes flow through the RC store, the client caches, and the
// on-disk cache, and Table 1 reports model sizes, so serialization is part of
// the system, not a debugging convenience.
#ifndef RC_SRC_ML_BYTES_H_
#define RC_SRC_ML_BYTES_H_

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace rc::ml {

class ByteWriter {
 public:
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    size_t off = buf_.size();
    buf_.resize(off + sizeof(T));
    std::memcpy(buf_.data() + off, &v, sizeof(T));
  }

  void U32(uint32_t v) { Pod(v); }
  void U64(uint64_t v) { Pod(v); }
  void I32(int32_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void F32(float v) { Pod(v); }

  void String(std::string_view s) {
    U32(static_cast<uint32_t>(s.size()));
    if (s.empty()) return;  // empty view's data() may be null; memcpy(_, null, 0) is UB
    size_t off = buf_.size();
    buf_.resize(off + s.size());
    std::memcpy(buf_.data() + off, s.data(), s.size());
  }

  template <typename T>
  void PodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    U32(static_cast<uint32_t>(v.size()));
    if (v.empty()) return;  // empty vector's data() may be null; memcpy(_, null, 0) is UB
    size_t off = buf_.size();
    buf_.resize(off + v.size() * sizeof(T));
    std::memcpy(buf_.data() + off, v.data(), v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& buf) : data_(buf.data()), size_(buf.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    Require(sizeof(T));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  uint32_t U32() { return Pod<uint32_t>(); }
  uint64_t U64() { return Pod<uint64_t>(); }
  int32_t I32() { return Pod<int32_t>(); }
  double F64() { return Pod<double>(); }
  float F32() { return Pod<float>(); }

  std::string String() {
    uint32_t n = U32();
    Require(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  template <typename T>
  std::vector<T> PodVector() {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = U32();
    Require(static_cast<size_t>(n) * sizeof(T));
    std::vector<T> v(n);
    if (n != 0) std::memcpy(v.data(), data_ + pos_, static_cast<size_t>(n) * sizeof(T));
    pos_ += static_cast<size_t>(n) * sizeof(T);
    return v;
  }

  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }

 private:
  void Require(size_t n) const {
    if (pos_ + n > size_) throw std::runtime_error("ByteReader: truncated input");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_BYTES_H_
