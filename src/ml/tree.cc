#include "src/ml/tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace rc::ml {

namespace {
constexpr int kMaxBins = 256;
}  // namespace

// Shared training machinery for both tree modes. Rows live in one index
// buffer that is partitioned in place as the tree grows.
class TreeTrainer {
 public:
  TreeTrainer(const BinnedView& data, const TreeConfig& config, Rng& rng)
      : data_(data), config_(config), rng_(rng) {
    if (data_.binner == nullptr || data_.bins == nullptr) {
      throw std::invalid_argument("TreeTrainer: null binned view");
    }
    feature_scratch_.resize(data_.features);
    std::iota(feature_scratch_.begin(), feature_scratch_.end(), 0u);
  }

  DecisionTree TrainClassifier(std::span<const int> labels,
                               std::span<const uint32_t> row_indices, int num_classes) {
    labels_ = labels;
    num_classes_ = num_classes;
    tree_.num_classes_ = num_classes;
    tree_.gain_importance_.assign(data_.features, 0.0);
    idx_.assign(row_indices.begin(), row_indices.end());
    BuildNode(0, idx_.size(), 0);
    return std::move(tree_);
  }

  DecisionTree TrainRegressor(std::span<const double> grad, std::span<const double> hess,
                              std::span<const uint32_t> row_indices) {
    grad_ = grad;
    hess_ = hess;
    num_classes_ = 0;
    tree_.num_classes_ = 0;
    tree_.gain_importance_.assign(data_.features, 0.0);
    idx_.assign(row_indices.begin(), row_indices.end());
    BuildNode(0, idx_.size(), 0);
    return std::move(tree_);
  }

 private:
  struct Split {
    bool found = false;
    size_t feature = 0;
    int bin = 0;  // go left iff Bin(row, feature) <= bin
    double gain = 0.0;
  };

  bool IsClassification() const { return num_classes_ > 0; }

  // Builds the subtree over idx_[begin, end); returns its node index.
  int32_t BuildNode(size_t begin, size_t end, int depth) {
    size_t n = end - begin;
    int32_t node_id = static_cast<int32_t>(tree_.nodes_.size());
    tree_.nodes_.emplace_back();

    Split split;
    if (depth < config_.max_depth &&
        n >= 2 * static_cast<size_t>(config_.min_samples_leaf)) {
      split = FindBestSplit(begin, end);
    }
    if (!split.found) {
      MakeLeaf(node_id, begin, end);
      return node_id;
    }

    tree_.gain_importance_[split.feature] += split.gain;
    // Partition rows: bins <= split.bin go left.
    const uint8_t* col = data_.bins + split.feature * data_.rows;
    auto mid_it = std::partition(idx_.begin() + begin, idx_.begin() + end,
                                 [&](uint32_t row) { return col[row] <= split.bin; });
    size_t mid = static_cast<size_t>(mid_it - idx_.begin());
    if (mid == begin || mid == end) {
      // Should not happen (split scan guarantees both sides non-empty), but
      // degenerate to a leaf rather than recurse forever.
      MakeLeaf(node_id, begin, end);
      return node_id;
    }

    tree_.nodes_[node_id].feature = static_cast<int32_t>(split.feature);
    tree_.nodes_[node_id].threshold = data_.binner->SplitThreshold(split.feature, split.bin);
    int32_t left = BuildNode(begin, mid, depth + 1);
    int32_t right = BuildNode(mid, end, depth + 1);
    tree_.nodes_[node_id].left = left;
    tree_.nodes_[node_id].right = right;
    return node_id;
  }

  void MakeLeaf(int32_t node_id, size_t begin, size_t end) {
    auto& node = tree_.nodes_[static_cast<size_t>(node_id)];
    node.feature = -1;
    if (IsClassification()) {
      node.payload = static_cast<int32_t>(tree_.leaf_probs_.size() /
                                          static_cast<size_t>(num_classes_));
      std::vector<double> counts(static_cast<size_t>(num_classes_), 0.0);
      for (size_t i = begin; i < end; ++i) counts[static_cast<size_t>(labels_[idx_[i]])] += 1.0;
      double total = static_cast<double>(end - begin);
      for (double c : counts) {
        tree_.leaf_probs_.push_back(static_cast<float>(c / total));
      }
    } else {
      node.payload = static_cast<int32_t>(tree_.leaf_values_.size());
      double g = 0.0, h = 0.0;
      for (size_t i = begin; i < end; ++i) {
        g += grad_[idx_[i]];
        h += hess_[idx_[i]];
      }
      tree_.leaf_values_.push_back(-g / (h + config_.lambda));
    }
  }

  // Candidate features for this node: all, or a uniform subsample.
  std::span<const uint32_t> SampleFeatures() {
    size_t k = config_.max_features > 0
                   ? std::min<size_t>(static_cast<size_t>(config_.max_features), data_.features)
                   : data_.features;
    if (k == data_.features) return feature_scratch_;
    // Partial Fisher-Yates: first k entries become the sample.
    for (size_t i = 0; i < k; ++i) {
      size_t j = static_cast<size_t>(
          rng_.UniformInt(static_cast<int64_t>(i), static_cast<int64_t>(data_.features) - 1));
      std::swap(feature_scratch_[i], feature_scratch_[j]);
    }
    return {feature_scratch_.data(), k};
  }

  Split FindBestSplit(size_t begin, size_t end) {
    return IsClassification() ? FindBestSplitGini(begin, end)
                              : FindBestSplitGrad(begin, end);
  }

  Split FindBestSplitGini(size_t begin, size_t end) {
    const size_t n = end - begin;
    const size_t k = static_cast<size_t>(num_classes_);
    // Parent class counts.
    std::vector<double> parent(k, 0.0);
    for (size_t i = begin; i < end; ++i) parent[static_cast<size_t>(labels_[idx_[i]])] += 1.0;
    double parent_gini = GiniImpurity(parent, static_cast<double>(n));

    Split best;
    std::vector<double> hist(static_cast<size_t>(kMaxBins) * k);
    std::vector<double> left(k);
    for (uint32_t f : SampleFeatures()) {
      int bins = data_.binner->NumBins(f);
      if (bins < 2) continue;
      std::fill(hist.begin(), hist.begin() + static_cast<size_t>(bins) * k, 0.0);
      const uint8_t* col = data_.bins + static_cast<size_t>(f) * data_.rows;
      for (size_t i = begin; i < end; ++i) {
        uint32_t row = idx_[i];
        hist[static_cast<size_t>(col[row]) * k + static_cast<size_t>(labels_[row])] += 1.0;
      }
      std::fill(left.begin(), left.end(), 0.0);
      double n_left = 0.0;
      for (int b = 0; b < bins - 1; ++b) {
        for (size_t c = 0; c < k; ++c) {
          double v = hist[static_cast<size_t>(b) * k + c];
          left[c] += v;
          n_left += v;
        }
        double n_right = static_cast<double>(n) - n_left;
        if (n_left < config_.min_samples_leaf || n_right < config_.min_samples_leaf) {
          continue;
        }
        double gini_left = 0.0, gini_right = 0.0;
        for (size_t c = 0; c < k; ++c) {
          double l = left[c];
          double r = parent[c] - l;
          gini_left += l * l;
          gini_right += r * r;
        }
        // impurity = 1 - sum(p^2); weighted children impurity:
        double child =
            (n_left - gini_left / n_left) + (n_right - gini_right / n_right);
        double gain = parent_gini * static_cast<double>(n) - child;
        if (gain > best.gain + config_.min_gain) {
          best.found = true;
          best.feature = f;
          best.bin = b;
          best.gain = gain;
        }
      }
    }
    return best;
  }

  Split FindBestSplitGrad(size_t begin, size_t end) {
    double g_total = 0.0, h_total = 0.0;
    for (size_t i = begin; i < end; ++i) {
      g_total += grad_[idx_[i]];
      h_total += hess_[idx_[i]];
    }
    const double lambda = config_.lambda;
    double parent_score = g_total * g_total / (h_total + lambda);

    Split best;
    std::vector<double> g_hist(kMaxBins), h_hist(kMaxBins);
    std::vector<uint32_t> c_hist(kMaxBins);
    const size_t n = end - begin;
    for (uint32_t f : SampleFeatures()) {
      int bins = data_.binner->NumBins(f);
      if (bins < 2) continue;
      std::fill(g_hist.begin(), g_hist.begin() + bins, 0.0);
      std::fill(h_hist.begin(), h_hist.begin() + bins, 0.0);
      std::fill(c_hist.begin(), c_hist.begin() + bins, 0u);
      const uint8_t* col = data_.bins + static_cast<size_t>(f) * data_.rows;
      for (size_t i = begin; i < end; ++i) {
        uint32_t row = idx_[i];
        uint8_t b = col[row];
        g_hist[b] += grad_[row];
        h_hist[b] += hess_[row];
        c_hist[b] += 1;
      }
      double g_left = 0.0, h_left = 0.0;
      size_t n_left = 0;
      for (int b = 0; b < bins - 1; ++b) {
        g_left += g_hist[b];
        h_left += h_hist[b];
        n_left += c_hist[b];
        size_t n_right = n - n_left;
        if (n_left < static_cast<size_t>(config_.min_samples_leaf) ||
            n_right < static_cast<size_t>(config_.min_samples_leaf)) {
          continue;
        }
        double g_right = g_total - g_left;
        double h_right = h_total - h_left;
        double gain = g_left * g_left / (h_left + lambda) +
                      g_right * g_right / (h_right + lambda) - parent_score;
        if (gain > best.gain + config_.min_gain) {
          best.found = true;
          best.feature = f;
          best.bin = b;
          best.gain = gain;
        }
      }
    }
    return best;
  }

  static double GiniImpurity(const std::vector<double>& counts, double n) {
    if (n <= 0.0) return 0.0;
    double s = 0.0;
    for (double c : counts) s += c * c;
    return 1.0 - s / (n * n);
  }

  const BinnedView& data_;
  const TreeConfig& config_;
  Rng& rng_;

  std::span<const int> labels_;
  std::span<const double> grad_;
  std::span<const double> hess_;
  int num_classes_ = 0;

  std::vector<uint32_t> idx_;
  std::vector<uint32_t> feature_scratch_;
  DecisionTree tree_;
};

DecisionTree DecisionTree::FitClassifier(const BinnedView& data, std::span<const int> labels,
                                         std::span<const uint32_t> row_indices,
                                         int num_classes, const TreeConfig& config,
                                         Rng& rng) {
  if (row_indices.empty()) throw std::invalid_argument("FitClassifier: no rows");
  TreeTrainer trainer(data, config, rng);
  return trainer.TrainClassifier(labels, row_indices, num_classes);
}

DecisionTree DecisionTree::FitRegressor(const BinnedView& data, std::span<const double> grad,
                                        std::span<const double> hess,
                                        std::span<const uint32_t> row_indices,
                                        const TreeConfig& config, Rng& rng) {
  if (row_indices.empty()) throw std::invalid_argument("FitRegressor: no rows");
  TreeTrainer trainer(data, config, rng);
  return trainer.TrainRegressor(grad, hess, row_indices);
}

size_t DecisionTree::leaf_count() const {
  size_t leaves = 0;
  for (const auto& node : nodes_) {
    if (node.feature < 0) ++leaves;
  }
  return leaves;
}

int DecisionTree::depth() const {
  // Depth via iterative DFS with explicit depth tracking.
  if (nodes_.empty()) return 0;
  int max_depth = 0;
  std::vector<std::pair<int32_t, int>> stack{{0, 1}};
  while (!stack.empty()) {
    auto [id, d] = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, d);
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.feature >= 0) {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return max_depth;
}

size_t DecisionTree::FindLeaf(std::span<const double> x) const {
  size_t id = 0;
  while (true) {
    const Node& node = nodes_[id];
    if (node.feature < 0) return id;
    id = static_cast<size_t>(x[static_cast<size_t>(node.feature)] < node.threshold
                                 ? node.left
                                 : node.right);
  }
}

void DecisionTree::PredictProba(std::span<const double> x, std::span<double> out) const {
  const Node& leaf = nodes_[FindLeaf(x)];
  const float* probs =
      leaf_probs_.data() + static_cast<size_t>(leaf.payload) * static_cast<size_t>(num_classes_);
  for (int c = 0; c < num_classes_; ++c) out[static_cast<size_t>(c)] = probs[c];
}

double DecisionTree::PredictValue(std::span<const double> x) const {
  const Node& leaf = nodes_[FindLeaf(x)];
  return leaf_values_[static_cast<size_t>(leaf.payload)];
}

void DecisionTree::Serialize(ByteWriter& w) const {
  w.I32(num_classes_);
  w.U32(static_cast<uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    w.I32(node.feature);
    w.F64(node.threshold);
    w.I32(node.left);
    w.I32(node.right);
    w.I32(node.payload);
  }
  w.PodVector(leaf_probs_);
  w.PodVector(leaf_values_);
}

DecisionTree DecisionTree::Deserialize(ByteReader& r, int32_t expected_classes,
                                       int32_t num_features) {
  DecisionTree tree;
  tree.num_classes_ = r.I32();
  if (tree.num_classes_ < 0 || tree.num_classes_ > (1 << 20)) {
    throw std::runtime_error("DecisionTree: implausible class count");
  }
  if (expected_classes >= 0 && tree.num_classes_ != expected_classes) {
    throw std::runtime_error("DecisionTree: class count disagrees with ensemble");
  }
  uint32_t n = r.U32();
  // Each serialized node is 24 bytes; a count the buffer cannot possibly
  // back is corruption — reject before the resize() tries to allocate.
  constexpr size_t kNodeBytes = 4 + 8 + 4 + 4 + 4;
  if (n == 0) throw std::runtime_error("DecisionTree: empty tree");
  if (static_cast<size_t>(n) > r.remaining() / kNodeBytes) {
    throw std::runtime_error("DecisionTree: node count exceeds buffer");
  }
  tree.nodes_.resize(n);
  for (auto& node : tree.nodes_) {
    node.feature = r.I32();
    node.threshold = r.F64();
    node.left = r.I32();
    node.right = r.I32();
    node.payload = r.I32();
  }
  tree.leaf_probs_ = r.PodVector<float>();
  tree.leaf_values_ = r.PodVector<double>();
  // Structural validation, so a decoded tree can never walk out of bounds or
  // loop forever at prediction time. Children always follow their parent in
  // the serialized order (the builder appends them after), so requiring
  // child > parent also guarantees traversal terminates.
  int64_t num_leaf_prob_rows =
      tree.num_classes_ > 0
          ? static_cast<int64_t>(tree.leaf_probs_.size()) / tree.num_classes_
          : 0;
  for (size_t i = 0; i < tree.nodes_.size(); ++i) {
    const Node& node = tree.nodes_[i];
    if (node.feature < 0) {  // leaf: payload indexes the leaf tables
      bool valid_payload =
          tree.num_classes_ > 0
              ? node.payload >= 0 && node.payload < num_leaf_prob_rows
              : node.payload >= 0 &&
                    static_cast<size_t>(node.payload) < tree.leaf_values_.size();
      if (!valid_payload) throw std::runtime_error("DecisionTree: leaf payload out of range");
    } else {
      if (node.left <= static_cast<int32_t>(i) || node.right <= static_cast<int32_t>(i) ||
          static_cast<uint32_t>(node.left) >= n || static_cast<uint32_t>(node.right) >= n) {
        throw std::runtime_error("DecisionTree: child index out of range");
      }
      if (num_features >= 0 && node.feature >= num_features) {
        throw std::runtime_error("DecisionTree: split feature out of range");
      }
    }
  }
  return tree;
}

}  // namespace rc::ml
