// Link functions shared by the legacy GBT traversal and the compiled
// ExecEngine. Both paths must produce bit-identical probabilities (the
// parity suite asserts exact equality), so the final logit->probability
// arithmetic lives in exactly one place.
#ifndef RC_SRC_ML_LINK_FUNCTIONS_H_
#define RC_SRC_ML_LINK_FUNCTIONS_H_

#include <cmath>
#include <span>

namespace rc::ml {

// Numerically stable softmax. `logits` and `out` may alias element-for-element
// (in-place use by the engine): each element is read exactly once before it is
// overwritten, and the operation order matches the out-of-place form.
inline void Softmax(std::span<const double> logits, std::span<double> out) {
  double m = logits[0];
  for (double v : logits) m = std::max(m, v);
  double sum = 0.0;
  for (size_t c = 0; c < logits.size(); ++c) {
    out[c] = std::exp(logits[c] - m);
    sum += out[c];
  }
  for (size_t c = 0; c < logits.size(); ++c) out[c] /= sum;
}

inline double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace rc::ml

#endif  // RC_SRC_ML_LINK_FUNCTIONS_H_
