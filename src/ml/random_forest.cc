#include "src/ml/random_forest.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "src/ml/exec_engine.h"

namespace rc::ml {

RandomForest RandomForest::Fit(const Dataset& data, const RandomForestConfig& config) {
  if (data.num_rows() == 0) throw std::invalid_argument("RandomForest::Fit: empty data");
  RandomForest forest;
  forest.num_classes_ = data.NumClasses();
  forest.num_features_ = static_cast<int>(data.num_features());

  FeatureBinner binner = FeatureBinner::Fit(data, config.max_bins);
  std::vector<uint8_t> bins = binner.Transform(data);
  BinnedView view{bins.data(), data.num_rows(), data.num_features(), &binner};

  TreeConfig tree_config = config.tree;
  tree_config.max_features =
      config.max_features > 0
          ? config.max_features
          : std::max(1, static_cast<int>(std::sqrt(static_cast<double>(data.num_features()))));

  size_t sample_size = std::max<size_t>(
      1, static_cast<size_t>(config.bagging_fraction * static_cast<double>(data.num_rows())));

  forest.trees_.resize(static_cast<size_t>(config.num_trees));
  // Pre-derive one RNG per tree so results are independent of thread count.
  std::vector<uint64_t> seeds(forest.trees_.size());
  {
    Rng seeder(config.seed);
    for (auto& s : seeds) s = seeder.NextU64();
  }

  auto train_range = [&](size_t begin, size_t end) {
    std::vector<uint32_t> rows(sample_size);
    for (size_t t = begin; t < end; ++t) {
      Rng rng(seeds[t]);
      for (auto& row : rows) {
        row = static_cast<uint32_t>(
            rng.UniformInt(0, static_cast<int64_t>(data.num_rows()) - 1));
      }
      forest.trees_[t] = DecisionTree::FitClassifier(view, data.labels(), rows,
                                                     forest.num_classes_, tree_config, rng);
    }
  };

  unsigned hw = std::thread::hardware_concurrency();
  size_t threads = config.num_threads > 0
                       ? static_cast<size_t>(config.num_threads)
                       : std::min<size_t>(hw == 0 ? 1 : hw, 8);
  threads = std::min(threads, forest.trees_.size());
  if (threads <= 1) {
    train_range(0, forest.trees_.size());
  } else {
    std::vector<std::thread> workers;
    size_t per = (forest.trees_.size() + threads - 1) / threads;
    for (size_t w = 0; w < threads; ++w) {
      size_t begin = w * per;
      size_t end = std::min(forest.trees_.size(), begin + per);
      if (begin >= end) break;
      workers.emplace_back(train_range, begin, end);
    }
    for (auto& worker : workers) worker.join();
  }
  forest.CompileEngine();
  return forest;
}

void RandomForest::CompileEngine() {
  engine_ = std::make_shared<const ExecEngine>(ExecEngine::Compile(*this));
}

std::vector<double> RandomForest::PredictProba(std::span<const double> x) const {
  std::vector<double> probs(static_cast<size_t>(num_classes_));
  PredictInto(x, probs);
  return probs;
}

void RandomForest::PredictInto(std::span<const double> x, std::span<double> out) const {
  if (engine_ != nullptr) {
    engine_->PredictInto(x, out);
    return;
  }
  auto probs = PredictProbaLegacy(x);
  std::copy(probs.begin(), probs.end(), out.begin());
}

void RandomForest::PredictBatch(const double* X, size_t n, size_t stride,
                                double* proba_out) const {
  if (engine_ != nullptr) {
    engine_->PredictBatch(X, n, stride, proba_out);
    return;
  }
  Classifier::PredictBatch(X, n, stride, proba_out);
}

std::vector<double> RandomForest::PredictProbaLegacy(std::span<const double> x) const {
  std::vector<double> acc(static_cast<size_t>(num_classes_), 0.0);
  std::vector<double> one(static_cast<size_t>(num_classes_));
  for (const auto& tree : trees_) {
    tree.PredictProba(x, one);
    for (size_t c = 0; c < acc.size(); ++c) acc[c] += one[c];
  }
  double inv = trees_.empty() ? 0.0 : 1.0 / static_cast<double>(trees_.size());
  for (double& v : acc) v *= inv;
  return acc;
}

std::vector<double> RandomForest::FeatureImportance() const {
  std::vector<double> acc(static_cast<size_t>(num_features_), 0.0);
  for (const auto& tree : trees_) {
    const auto& gains = tree.gain_importance();
    for (size_t f = 0; f < gains.size() && f < acc.size(); ++f) acc[f] += gains[f];
  }
  double total = 0.0;
  for (double v : acc) total += v;
  if (total > 0.0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

void RandomForest::Serialize(ByteWriter& w) const {
  w.I32(num_classes_);
  w.I32(num_features_);
  w.U32(static_cast<uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.Serialize(w);
}

RandomForest RandomForest::Deserialize(ByteReader& r) {
  RandomForest forest;
  forest.num_classes_ = r.I32();
  forest.num_features_ = r.I32();
  if (forest.num_classes_ < 0 || forest.num_classes_ > (1 << 20) || forest.num_features_ < 0 ||
      forest.num_features_ > (1 << 20)) {
    throw std::runtime_error("RandomForest: implausible header");
  }
  uint32_t n = r.U32();
  // A serialized tree is at least ~24 bytes; reject counts the buffer cannot
  // back before reserve() tries to allocate for them.
  if (static_cast<size_t>(n) > r.remaining() / 24) {
    throw std::runtime_error("RandomForest: tree count exceeds buffer");
  }
  forest.trees_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    forest.trees_.push_back(
        DecisionTree::Deserialize(r, forest.num_classes_, forest.num_features_));
  }
  // Compile on the load path (the client's store_read -> decode span), so
  // the first prediction is as cheap as every later one.
  forest.CompileEngine();
  return forest;
}

}  // namespace rc::ml
