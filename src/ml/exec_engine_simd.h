// Internal interface between ExecEngine and its AVX2 walk kernel. The kernel
// lives in its own translation unit (exec_engine_avx2.cc) because it is the
// ONLY code in the repo compiled with -mavx2 -mfma (tools/check_all.sh lints
// this): letting the ISA flags leak into any other TU would let the compiler
// auto-vectorize portable code with AVX2 and crash older hosts before the
// runtime dispatch in ExecEngine::Avx2Available() ever runs. When the CMake
// option RC_ENABLE_AVX2 is off (or the target is not x86_64) the same TU
// compiles to stubs and CompiledWithAvx2() reports false.
#ifndef RC_SRC_ML_EXEC_ENGINE_SIMD_H_
#define RC_SRC_ML_EXEC_ENGINE_SIMD_H_

#include <cstddef>
#include <cstdint>

namespace rc::ml::internal {

// Borrowed pointers into ExecEngine's SoA node pool (exec_engine.h).
// `child_pair` packs both 32-bit child links per node (left low, right high)
// so the kernel fetches both descent candidates with one 64-bit gather.
struct NodePoolView {
  const int32_t* feature_idx;
  const double* threshold;
  const int64_t* child_pair;
};

// True when this binary contains the real AVX2 kernel (compile-time half of
// the dispatch; ExecEngine::Avx2Available() adds the CPUID half).
bool CompiledWithAvx2();

// AVX2 lockstep walk of exactly 16 consecutive rows of X through the tree
// rooted at `root` for exactly `rounds` comparison rounds: two 8-wide i32
// chains, per-round `_mm256_i32gather_pd` on thresholds/features and
// `_mm256_cmp_pd` (_CMP_LT_OQ — identical to scalar `<` on NaN/∞) + blends
// to select child links. Bit-exact with ExecEngine::WalkLane by
// construction: the kernel only *selects* leaf payload indices, it performs
// no arithmetic. Preconditions: root >= 0, stride * 4 fits in int32 (the
// dispatcher guards), and `payload` has room for 16 entries. Callers must
// check CompiledWithAvx2() (via ExecEngine::Avx2Available()) first — the
// stub build aborts.
void WalkLanes16Avx2(const NodePoolView& pool, int32_t root, int32_t rounds,
                     const double* X, size_t stride, int32_t* payload);

// Same walk over exactly 32 consecutive rows (four 8-wide chains — the
// preferred full-block shape: twice the independent gather chains in flight
// and half the per-block call overhead, which is what shallow boosted trees
// are bound by). Same preconditions; `payload` holds 32 entries.
void WalkLanes32Avx2(const NodePoolView& pool, int32_t root, int32_t rounds,
                     const double* X, size_t stride, int32_t* payload);

}  // namespace rc::ml::internal

#endif  // RC_SRC_ML_EXEC_ENGINE_SIMD_H_
