// Extreme Gradient Boosting Trees: Newton boosting with softmax (K > 2) or
// logistic (K == 2) loss, shrinkage, row subsampling, and L2-regularized leaf
// values. The paper uses boosted trees for deployment size, lifetime, and
// workload class (Table 1).
#ifndef RC_SRC_ML_GBT_H_
#define RC_SRC_ML_GBT_H_

#include <memory>
#include <span>
#include <vector>

#include "src/ml/classifier.h"
#include "src/ml/dataset.h"
#include "src/ml/tree.h"

namespace rc::ml {

struct GbtConfig {
  int num_rounds = 60;
  double learning_rate = 0.2;
  TreeConfig tree = {.max_depth = 6, .min_samples_leaf = 8, .lambda = 1.0};
  double subsample = 0.8;  // row subsample per round (without replacement)
  // Per-class loss weights (empty = uniform). Upweighting a rare class
  // boosts its recall at the cost of precision — exactly the tradeoff the
  // paper makes for the interactive workload class ("mistakes in this
  // direction are acceptable").
  std::vector<double> class_weights;
  uint64_t seed = 1;
  int max_bins = 64;
};

class GradientBoostedTrees final : public Classifier {
 public:
  static GradientBoostedTrees Fit(const Dataset& data, const GbtConfig& config);

  int num_classes() const override { return num_classes_; }
  int num_features() const override { return num_features_; }
  // Prediction entry points delegate to the compiled ExecEngine (built at
  // the end of Fit/Deserialize — the load path compiles, the prediction
  // path only walks).
  std::vector<double> PredictProba(std::span<const double> x) const override;
  void PredictInto(std::span<const double> x, std::span<double> out) const override;
  void PredictBatch(const double* X, size_t n, size_t stride,
                    double* proba_out) const override;
  const ExecEngine* engine() const override { return engine_.get(); }
  // The original per-tree AoS traversal, kept for the bit-exactness parity
  // suite (tests/ml/exec_engine_test.cc) — not a hot path.
  std::vector<double> PredictProbaLegacy(std::span<const double> x) const;

  std::vector<double> FeatureImportance() const override;

  size_t tree_count() const { return trees_.size(); }
  const DecisionTree& tree(size_t i) const { return trees_[i]; }
  const std::vector<double>& base_score() const { return base_score_; }
  double learning_rate() const { return learning_rate_; }

  const char* type_name() const override { return "gbt"; }
  void Serialize(ByteWriter& w) const override;
  static GradientBoostedTrees Deserialize(ByteReader& r);

 private:
  void CompileEngine();

  // K == 2: one tree per round (logistic); K > 2: K trees per round
  // (softmax), stored round-major.
  std::vector<DecisionTree> trees_;
  std::vector<double> base_score_;  // per-class prior log-odds / logits
  int num_classes_ = 0;
  int num_features_ = 0;
  double learning_rate_ = 0.2;
  // Shared (not unique) so the model stays copyable; the engine is immutable
  // and safe to share across copies and threads.
  std::shared_ptr<const ExecEngine> engine_;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_GBT_H_
