// Histogram-based CART decision tree. One implementation serves both
// ensemble families of Table 1: Gini-impurity classification trees (Random
// Forest) and second-order gradient regression trees (Extreme Gradient
// Boosting). Training operates on a quantile-binned matrix (FeatureBinner)
// for O(bins) split scans; inference walks raw feature values against stored
// raw-value thresholds, so a trained tree is self-contained.
#ifndef RC_SRC_ML_TREE_H_
#define RC_SRC_ML_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/bytes.h"
#include "src/ml/dataset.h"

namespace rc::ml {

struct TreeConfig {
  int max_depth = 10;
  int min_samples_leaf = 2;
  double min_gain = 1e-7;
  // Features considered per split; 0 means all (GBT), sqrt(F) is the usual
  // Random Forest choice (set by the forest trainer).
  int max_features = 0;
  // L2 regularization on regression leaf values (XGBoost's lambda).
  double lambda = 1.0;
};

// Read-only view of a binned training matrix.
struct BinnedView {
  const uint8_t* bins = nullptr;  // column-major: bins[f * rows + i]
  size_t rows = 0;
  size_t features = 0;
  const FeatureBinner* binner = nullptr;

  uint8_t Bin(size_t row, size_t f) const { return bins[f * rows + row]; }
};

class DecisionTree {
 public:
  // Tree node in the AoS layout produced by training/deserialization. Public
  // (read-only via nodes()) so ExecEngine can flatten the tree into its SoA
  // node pool without re-walking the serialized form.
  struct Node {
    int32_t feature = -1;   // -1 for leaves
    double threshold = 0.0; // go left iff x[feature] < threshold
    int32_t left = -1;
    int32_t right = -1;
    int32_t payload = -1;   // leaves: index into leaf storage
  };

  DecisionTree() = default;

  // Fits a Gini classification tree. `row_indices` selects (possibly
  // repeated, for bagging) training rows.
  static DecisionTree FitClassifier(const BinnedView& data, std::span<const int> labels,
                                    std::span<const uint32_t> row_indices, int num_classes,
                                    const TreeConfig& config, Rng& rng);

  // Fits a regression tree to per-row gradient/hessian pairs (Newton
  // boosting); leaf value is -sum(g) / (sum(h) + lambda).
  static DecisionTree FitRegressor(const BinnedView& data, std::span<const double> grad,
                                   std::span<const double> hess,
                                   std::span<const uint32_t> row_indices,
                                   const TreeConfig& config, Rng& rng);

  bool is_classifier() const { return num_classes_ > 0; }
  int num_classes() const { return num_classes_; }
  size_t node_count() const { return nodes_.size(); }
  size_t leaf_count() const;
  int depth() const;

  // Classification: writes class probabilities into `out` (num_classes).
  void PredictProba(std::span<const double> x, std::span<double> out) const;
  // Regression: leaf value for x.
  double PredictValue(std::span<const double> x) const;

  // Total Gini / loss-reduction gain attributed to each feature during
  // training (empty if deserialized from an old buffer; always sized to the
  // training feature count otherwise).
  const std::vector<double>& gain_importance() const { return gain_importance_; }

  // Read-only structural access for the ExecEngine compiler (and tests).
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const float> leaf_probs() const { return leaf_probs_; }
  std::span<const double> leaf_values() const { return leaf_values_; }

  void Serialize(ByteWriter& w) const;
  // Deserializes and structurally validates one tree. When the caller knows
  // the ensemble contract it can pass `expected_classes` (exact match; GBT
  // regression trees use 0) and `num_features` (exclusive upper bound on
  // split feature indices); -1 skips the respective check.
  static DecisionTree Deserialize(ByteReader& r, int32_t expected_classes = -1,
                                  int32_t num_features = -1);

 private:
  size_t FindLeaf(std::span<const double> x) const;

  std::vector<Node> nodes_;
  int num_classes_ = 0;                // 0 => regression tree
  std::vector<float> leaf_probs_;      // classification: payload * k + c
  std::vector<double> leaf_values_;    // regression
  std::vector<double> gain_importance_;

  friend class TreeTrainer;
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_TREE_H_
