#include "src/ml/gbt.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/ml/exec_engine.h"
#include "src/ml/link_functions.h"

namespace rc::ml {

GradientBoostedTrees GradientBoostedTrees::Fit(const Dataset& data, const GbtConfig& config) {
  if (data.num_rows() == 0) throw std::invalid_argument("GBT::Fit: empty data");
  GradientBoostedTrees model;
  model.num_classes_ = data.NumClasses();
  model.num_features_ = static_cast<int>(data.num_features());
  model.learning_rate_ = config.learning_rate;
  const int k = model.num_classes_;
  const size_t n = data.num_rows();
  if (k < 2) throw std::invalid_argument("GBT::Fit: need at least 2 classes");

  FeatureBinner binner = FeatureBinner::Fit(data, config.max_bins);
  std::vector<uint8_t> bins = binner.Transform(data);
  BinnedView view{bins.data(), n, data.num_features(), &binner};

  // Base score from class priors (clamped away from 0 to keep logits finite).
  std::vector<double> prior(static_cast<size_t>(k), 0.0);
  for (int label : data.labels()) prior[static_cast<size_t>(label)] += 1.0;
  for (double& p : prior) p = std::max(p / static_cast<double>(n), 1e-4);
  const bool binary = (k == 2);
  if (binary) {
    model.base_score_ = {std::log(prior[1] / prior[0])};
  } else {
    model.base_score_.resize(static_cast<size_t>(k));
    for (int c = 0; c < k; ++c) model.base_score_[static_cast<size_t>(c)] = std::log(prior[static_cast<size_t>(c)]);
  }

  // Running raw scores per row (binary: single logit; multiclass: k logits).
  const size_t score_width = binary ? 1 : static_cast<size_t>(k);
  std::vector<double> scores(n * score_width);
  for (size_t i = 0; i < n; ++i) {
    for (size_t c = 0; c < score_width; ++c) scores[i * score_width + c] = model.base_score_[c];
  }

  if (!config.class_weights.empty() &&
      config.class_weights.size() != static_cast<size_t>(k)) {
    throw std::invalid_argument("GBT::Fit: class_weights size mismatch");
  }
  auto weight_of = [&](int label) {
    return config.class_weights.empty() ? 1.0
                                        : config.class_weights[static_cast<size_t>(label)];
  };

  Rng rng(config.seed);
  std::vector<double> grad(n), hess(n);
  std::vector<uint32_t> rows;
  rows.reserve(n);
  std::vector<double> probs(static_cast<size_t>(k));

  for (int round = 0; round < config.num_rounds; ++round) {
    // Row subsample for this round (shared across the per-class trees).
    rows.clear();
    if (config.subsample >= 1.0) {
      rows.resize(n);
      std::iota(rows.begin(), rows.end(), 0u);
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(config.subsample)) rows.push_back(static_cast<uint32_t>(i));
      }
      if (rows.empty()) rows.push_back(static_cast<uint32_t>(rng.UniformInt(
          0, static_cast<int64_t>(n) - 1)));
    }

    if (binary) {
      for (size_t i = 0; i < n; ++i) {
        double p = Sigmoid(scores[i]);
        double y = data.Label(i) == 1 ? 1.0 : 0.0;
        double w = weight_of(data.Label(i));
        grad[i] = w * (p - y);
        hess[i] = std::max(w * p * (1.0 - p), 1e-9);
      }
      DecisionTree tree =
          DecisionTree::FitRegressor(view, grad, hess, rows, config.tree, rng);
      for (size_t i = 0; i < n; ++i) {
        scores[i] += config.learning_rate * tree.PredictValue(data.Row(i));
      }
      model.trees_.push_back(std::move(tree));
    } else {
      for (int c = 0; c < k; ++c) {
        for (size_t i = 0; i < n; ++i) {
          Softmax({&scores[i * score_width], score_width}, probs);
          double p = probs[static_cast<size_t>(c)];
          double y = data.Label(i) == c ? 1.0 : 0.0;
          double w = weight_of(data.Label(i));
          grad[i] = w * (p - y);
          hess[i] = std::max(w * p * (1.0 - p), 1e-9);
        }
        DecisionTree tree =
            DecisionTree::FitRegressor(view, grad, hess, rows, config.tree, rng);
        for (size_t i = 0; i < n; ++i) {
          scores[i * score_width + static_cast<size_t>(c)] +=
              config.learning_rate * tree.PredictValue(data.Row(i));
        }
        model.trees_.push_back(std::move(tree));
      }
    }
  }
  model.CompileEngine();
  return model;
}

void GradientBoostedTrees::CompileEngine() {
  engine_ = std::make_shared<const ExecEngine>(ExecEngine::Compile(*this));
}

std::vector<double> GradientBoostedTrees::PredictProba(std::span<const double> x) const {
  std::vector<double> probs(static_cast<size_t>(num_classes_));
  PredictInto(x, probs);
  return probs;
}

void GradientBoostedTrees::PredictInto(std::span<const double> x,
                                       std::span<double> out) const {
  if (engine_ != nullptr) {
    engine_->PredictInto(x, out);
    return;
  }
  auto probs = PredictProbaLegacy(x);
  std::copy(probs.begin(), probs.end(), out.begin());
}

void GradientBoostedTrees::PredictBatch(const double* X, size_t n, size_t stride,
                                        double* proba_out) const {
  if (engine_ != nullptr) {
    engine_->PredictBatch(X, n, stride, proba_out);
    return;
  }
  Classifier::PredictBatch(X, n, stride, proba_out);
}

std::vector<double> GradientBoostedTrees::PredictProbaLegacy(
    std::span<const double> x) const {
  const bool binary = (num_classes_ == 2);
  if (binary) {
    double z = base_score_[0];
    for (const auto& tree : trees_) z += learning_rate_ * tree.PredictValue(x);
    double p1 = Sigmoid(z);
    return {1.0 - p1, p1};
  }
  std::vector<double> logits(base_score_);
  const size_t k = static_cast<size_t>(num_classes_);
  for (size_t t = 0; t < trees_.size(); ++t) {
    logits[t % k] += learning_rate_ * trees_[t].PredictValue(x);
  }
  std::vector<double> probs(k);
  Softmax(logits, probs);
  return probs;
}

std::vector<double> GradientBoostedTrees::FeatureImportance() const {
  std::vector<double> acc(static_cast<size_t>(num_features_), 0.0);
  for (const auto& tree : trees_) {
    const auto& gains = tree.gain_importance();
    for (size_t f = 0; f < gains.size() && f < acc.size(); ++f) acc[f] += gains[f];
  }
  double total = std::accumulate(acc.begin(), acc.end(), 0.0);
  if (total > 0.0) {
    for (double& v : acc) v /= total;
  }
  return acc;
}

void GradientBoostedTrees::Serialize(ByteWriter& w) const {
  w.I32(num_classes_);
  w.I32(num_features_);
  w.F64(learning_rate_);
  w.PodVector(base_score_);
  w.U32(static_cast<uint32_t>(trees_.size()));
  for (const auto& tree : trees_) tree.Serialize(w);
}

GradientBoostedTrees GradientBoostedTrees::Deserialize(ByteReader& r) {
  GradientBoostedTrees model;
  model.num_classes_ = r.I32();
  model.num_features_ = r.I32();
  if (model.num_classes_ < 0 || model.num_classes_ > (1 << 20) || model.num_features_ < 0 ||
      model.num_features_ > (1 << 20)) {
    throw std::runtime_error("GradientBoostedTrees: implausible header");
  }
  if (model.num_classes_ < 2) {
    throw std::runtime_error("GradientBoostedTrees: need at least 2 classes");
  }
  model.learning_rate_ = r.F64();
  model.base_score_ = r.PodVector<double>();
  // PredictProba indexes base_score_ directly; its size is fixed by the
  // class count (1 logit for binary, k for multiclass).
  size_t want_scores = model.num_classes_ == 2 ? 1 : static_cast<size_t>(model.num_classes_);
  if (model.base_score_.size() != want_scores) {
    throw std::runtime_error("GradientBoostedTrees: base score size mismatch");
  }
  uint32_t n = r.U32();
  // A serialized tree is at least ~24 bytes; reject counts the buffer cannot
  // back before reserve() tries to allocate for them.
  if (static_cast<size_t>(n) > r.remaining() / 24) {
    throw std::runtime_error("GradientBoostedTrees: tree count exceeds buffer");
  }
  model.trees_.reserve(n);
  // Boosting trees are regression trees (num_classes == 0): PredictValue
  // indexes leaf_values_, which only the regression payload check covers.
  for (uint32_t i = 0; i < n; ++i) {
    model.trees_.push_back(DecisionTree::Deserialize(r, 0, model.num_features_));
  }
  // Compile on the load path (the client's store_read -> decode span), so
  // the first prediction is as cheap as every later one.
  model.CompileEngine();
  return model;
}

}  // namespace rc::ml
