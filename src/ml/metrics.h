// Classification quality metrics in the exact form Table 4 reports them:
// overall accuracy, per-bucket prevalence / precision / recall, and the
// confidence-thresholded P-theta / R-theta columns (predictions whose top
// score falls below theta become no-predictions).
#ifndef RC_SRC_ML_METRICS_H_
#define RC_SRC_ML_METRICS_H_

#include <cstdint>
#include <vector>

namespace rc::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int true_label, int predicted_label);

  int num_classes() const { return k_; }
  int64_t total() const { return total_; }
  int64_t count(int true_label, int predicted_label) const;

  double Accuracy() const;
  // Fraction of instances whose true label is c (the "%" columns of Table 4).
  double Prevalence(int c) const;
  // True positives / predicted positives for class c; 0 if none predicted.
  double Precision(int c) const;
  // True positives / actual positives for class c; 0 if none actual.
  double Recall(int c) const;

 private:
  int k_;
  int64_t total_ = 0;
  std::vector<int64_t> m_;  // row-major [true][pred]
};

// Confidence-thresholded aggregate quality. Following the paper's usage, a
// prediction is served only if its top bucket score >= theta; otherwise the
// client receives a no-prediction. P-theta is the accuracy over served
// predictions; R-theta is the fraction of requests that received a served
// prediction (coverage) — "high precision without substantially hurting
// recall".
struct ThresholdedQuality {
  double precision = 0.0;  // correct / served
  double coverage = 0.0;   // served / total
  int64_t served = 0;
  int64_t total = 0;
};

class ThresholdedAccumulator {
 public:
  explicit ThresholdedAccumulator(double theta) : theta_(theta) {}

  void Add(int true_label, int predicted_label, double score);
  ThresholdedQuality Result() const;
  double theta() const { return theta_; }

 private:
  double theta_;
  int64_t total_ = 0;
  int64_t served_ = 0;
  int64_t correct_ = 0;
};

// Multiclass log loss (cross-entropy) given per-instance probability rows.
double LogLoss(const std::vector<std::vector<double>>& probs, const std::vector<int>& labels);

}  // namespace rc::ml

#endif  // RC_SRC_ML_METRICS_H_
