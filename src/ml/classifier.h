// Abstract classification-model interface plus the serialization registry.
// Resource Central is agnostic to the modeling approach (paper Section 4.2);
// everything downstream — the model store, the client DLL, the scheduler —
// programs against this interface.
#ifndef RC_SRC_ML_CLASSIFIER_H_
#define RC_SRC_ML_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ml/bytes.h"

namespace rc::ml {

class ExecEngine;

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual int num_classes() const = 0;
  virtual int num_features() const = 0;

  // Class-probability vector for one example (size num_classes).
  virtual std::vector<double> PredictProba(std::span<const double> x) const = 0;

  // Allocation-free single-example form: writes num_classes() probabilities
  // into `out`. The ensemble classifiers route this through their compiled
  // ExecEngine; the default falls back to PredictProba (test doubles).
  virtual void PredictInto(std::span<const double> x, std::span<double> out) const;

  // Batched inference over `n` row-major examples of `stride` doubles each
  // (stride >= num_features()); writes n * num_classes() probabilities.
  // Ensemble classifiers dispatch to ExecEngine::PredictBatch (tree-major,
  // cache-friendly); the default loops PredictInto.
  virtual void PredictBatch(const double* X, size_t n, size_t stride,
                            double* proba_out) const;

  // Convenience: argmax class plus its probability (the "confidence score"
  // RC attaches to every prediction).
  struct Scored {
    int label;
    double score;
  };
  Scored PredictScored(std::span<const double> x) const;
  // Scratch form for hot loops: no allocation; `scratch.size()` must be
  // num_classes().
  Scored PredictScored(std::span<const double> x, std::span<double> scratch) const;

  // The compiled execution-engine representation, when one exists (built on
  // the load path for the ensemble classifiers; nullptr for custom types).
  virtual const ExecEngine* engine() const { return nullptr; }

  // Gain-based feature importance, summed over the ensemble; empty if the
  // model was deserialized without importances.
  virtual std::vector<double> FeatureImportance() const { return {}; }

  // Type tag used by the registry ("random_forest", "gbt").
  virtual const char* type_name() const = 0;
  virtual void Serialize(ByteWriter& w) const = 0;

  // Serializes with a type tag prefix so Deserialize can dispatch.
  std::vector<uint8_t> SerializeTagged() const;
  static std::unique_ptr<Classifier> DeserializeTagged(const std::vector<uint8_t>& bytes);
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_CLASSIFIER_H_
