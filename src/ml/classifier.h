// Abstract classification-model interface plus the serialization registry.
// Resource Central is agnostic to the modeling approach (paper Section 4.2);
// everything downstream — the model store, the client DLL, the scheduler —
// programs against this interface.
#ifndef RC_SRC_ML_CLASSIFIER_H_
#define RC_SRC_ML_CLASSIFIER_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/ml/bytes.h"

namespace rc::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual int num_classes() const = 0;
  virtual int num_features() const = 0;

  // Class-probability vector for one example (size num_classes).
  virtual std::vector<double> PredictProba(std::span<const double> x) const = 0;

  // Convenience: argmax class plus its probability (the "confidence score"
  // RC attaches to every prediction).
  struct Scored {
    int label;
    double score;
  };
  Scored PredictScored(std::span<const double> x) const;

  // Gain-based feature importance, summed over the ensemble; empty if the
  // model was deserialized without importances.
  virtual std::vector<double> FeatureImportance() const { return {}; }

  // Type tag used by the registry ("random_forest", "gbt").
  virtual const char* type_name() const = 0;
  virtual void Serialize(ByteWriter& w) const = 0;

  // Serializes with a type tag prefix so Deserialize can dispatch.
  std::vector<uint8_t> SerializeTagged() const;
  static std::unique_ptr<Classifier> DeserializeTagged(const std::vector<uint8_t>& bytes);
};

}  // namespace rc::ml

#endif  // RC_SRC_ML_CLASSIFIER_H_
